"""Catalog: the registry of tables known to a database instance.

The catalog is the only mutable piece of the storage layer.  It maps table
names to :class:`~repro.storage.table.Table` objects and exposes the
statistics (row counts, distinct counts) that the optimizer's cardinality
estimator consumes.

Concurrency model (MVCC-lite)
-----------------------------
All catalog state is guarded by a re-entrant lock, so registration,
lookup, and version queries are safe from any thread.  On top of that the
catalog supports *pinned snapshots*: :meth:`Catalog.snapshot` captures an
immutable ``name -> (version, Table, TableStatistics)`` view and pins each
version with a refcount.  A concurrent ``register(..., replace=True)``
that replaces a pinned version *retains* the old table instead of
dropping it, so a query running against the snapshot keeps reading a
consistent pre-replace image.  When the last snapshot holding a version
releases it, the catalog drops the retained table and fires its *release
hooks* — this is what turns cache/segment invalidation from immediate
into release-driven (the database wires :class:`ArtifactCache` and
:class:`SharedColumnArena` invalidation through these hooks).

Hooks (and :class:`EncodingStore` invalidation) are always fired
*outside* the catalog lock: the encoding store takes its own lock and
calls back into ``catalog.version()`` on reads, so firing under the
catalog lock would create a lock-order cycle.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.errors import CatalogError
from repro.storage.encodings import EncodingStore
from repro.storage.table import Table


@dataclass
class TableStatistics:
    """Summary statistics for one table, used by cardinality estimation."""

    num_rows: int
    distinct_counts: Dict[str, int]

    def distinct(self, column: str) -> int:
        """Distinct count for a column (falls back to row count if unknown)."""
        return self.distinct_counts.get(column, max(self.num_rows, 1))


#: Signature of a release hook: called with (table_name, version) after the
#: last snapshot pinning that version releases it.
ReleaseHook = Callable[[str, int], None]


@dataclass(frozen=True)
class _SnapshotEntry:
    version: int
    table: Table
    statistics: TableStatistics


class CatalogSnapshot:
    """An immutable, pinned view of a subset of the catalog.

    Serves the same read API the executor and optimizer use on a live
    catalog (``table`` / ``version`` / ``statistics`` / ``encodings``), but
    every answer is frozen at the moment :meth:`Catalog.snapshot` was
    called.  Must be released exactly once (``release()`` is idempotent;
    the snapshot is also a context manager).
    """

    def __init__(self, catalog: "Catalog", entries: Dict[str, _SnapshotEntry]) -> None:
        self._catalog = catalog
        self._entries = entries
        self._released = False
        self._lock = threading.Lock()

    def _entry(self, name: str) -> _SnapshotEntry:
        try:
            return self._entries[name]
        except KeyError:
            raise CatalogError(f"table {name!r} is not in this snapshot") from None

    def table(self, name: str) -> Table:
        return self._entry(name).table

    def version(self, name: str) -> int:
        return self._entry(name).version

    def statistics(self, name: str) -> TableStatistics:
        return self._entry(name).statistics

    def versions(self) -> Dict[str, int]:
        """The pinned ``name -> version`` map (used as a plan-cache key)."""
        return {name: entry.version for name, entry in self._entries.items()}

    @property
    def encodings(self) -> EncodingStore:
        """The live encoding store.

        The store keys entries by ``(name, version)`` *and* checks table
        identity, so reads through a snapshot of a replaced version simply
        miss and fall back to raw (bit-identical) evaluation — stale
        encodings are never served.
        """
        return self._catalog.encodings

    def has_table(self, name: str) -> bool:
        return name in self._entries

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    @property
    def released(self) -> bool:
        return self._released

    def release(self) -> None:
        """Unpin every version held by this snapshot (idempotent)."""
        with self._lock:
            if self._released:
                return
            self._released = True
        self._catalog._release_pins(
            [(name, entry.version) for name, entry in self._entries.items()]
        )

    def __enter__(self) -> "CatalogSnapshot":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.release()


class Catalog:
    """A mutable, thread-safe registry of tables and their statistics."""

    def __init__(self) -> None:
        # Guards every dict below.  Re-entrant because read helpers call
        # each other (e.g. ``largest_table`` -> ``_tables``).
        self._lock = threading.RLock()
        self._tables: Dict[str, Table] = {}
        self._stats: Dict[str, TableStatistics] = {}
        # Monotonic per-name version counters.  A name's counter survives
        # unregistration so a re-registered table can never reuse an old
        # version — cached execution artifacts keyed by (name, version)
        # therefore never alias stale data.
        self._versions: Dict[str, int] = {}
        # Snapshot pin refcounts and retained (replaced-but-pinned) tables.
        self._pins: Dict[Tuple[str, int], int] = {}
        self._retained: Dict[Tuple[str, int], Tuple[Table, TableStatistics]] = {}
        self._release_hooks: List[ReleaseHook] = []
        self._encodings = EncodingStore(self)

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(self, table: Table, replace: bool = False) -> None:
        """Register a table.

        Parameters
        ----------
        table:
            The table to register under ``table.name``.
        replace:
            When False (default), registering a name that already exists
            raises :class:`CatalogError`.
        """
        to_fire: List[Tuple[str, int]] = []
        with self._lock:
            name = table.name
            if name in self._tables and not replace:
                raise CatalogError(f"table {name!r} is already registered")
            if name in self._tables:
                old_version = self._versions[name]
                old_key = (name, old_version)
                if self._pins.get(old_key):
                    # A snapshot still reads the old version: retain it so
                    # pinned readers keep a consistent image; invalidation
                    # fires when the last reader releases.
                    self._retained[old_key] = (
                        self._tables[name],
                        self._stats[name],
                    )
                else:
                    to_fire.append(old_key)
            self._tables[name] = table
            self._stats[name] = _compute_statistics(table)
            self._versions[name] = self._versions.get(name, 0) + 1
        # Outside the lock: the encoding store and release hooks take their
        # own locks and may call back into catalog reads.
        self._encodings.invalidate_table(table.name)
        self._fire_release_hooks(to_fire)

    def unregister(self, name: str) -> None:
        """Remove a table from the catalog."""
        to_fire: List[Tuple[str, int]] = []
        with self._lock:
            if name not in self._tables:
                raise CatalogError(f"table {name!r} is not registered")
            old_key = (name, self._versions[name])
            if self._pins.get(old_key):
                self._retained[old_key] = (self._tables[name], self._stats[name])
            else:
                to_fire.append(old_key)
            del self._tables[name]
            del self._stats[name]
        self._encodings.invalidate_table(name)
        self._fire_release_hooks(to_fire)

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def snapshot(self, names: Iterable[str]) -> CatalogSnapshot:
        """Pin the current version of each named table into a snapshot.

        Raises :class:`CatalogError` if any name is unregistered.  The
        returned snapshot must be released (it is a context manager).
        """
        with self._lock:
            entries: Dict[str, _SnapshotEntry] = {}
            for name in names:
                if name in entries:
                    continue
                if name not in self._tables:
                    raise CatalogError(f"table {name!r} is not registered")
                entries[name] = _SnapshotEntry(
                    version=self._versions[name],
                    table=self._tables[name],
                    statistics=self._stats[name],
                )
            for name, entry in entries.items():
                key = (name, entry.version)
                self._pins[key] = self._pins.get(key, 0) + 1
            return CatalogSnapshot(self, entries)

    def add_release_hook(self, hook: ReleaseHook) -> None:
        """Register a callback fired (outside the lock) when a version's
        last pin is released — or immediately on replace when unpinned."""
        with self._lock:
            self._release_hooks.append(hook)

    def _release_pins(self, keys: List[Tuple[str, int]]) -> None:
        to_fire: List[Tuple[str, int]] = []
        with self._lock:
            for key in keys:
                count = self._pins.get(key, 0) - 1
                if count > 0:
                    self._pins[key] = count
                    continue
                self._pins.pop(key, None)
                # Fire only for versions no longer current: either retained
                # (replaced while pinned) or already superseded.
                name, version = key
                if self._retained.pop(key, None) is not None:
                    to_fire.append(key)
                elif self._versions.get(name) != version or name not in self._tables:
                    to_fire.append(key)
        self._fire_release_hooks(to_fire)

    def _fire_release_hooks(self, keys: List[Tuple[str, int]]) -> None:
        if not keys:
            return
        with self._lock:
            hooks = list(self._release_hooks)
        for name, version in keys:
            for hook in hooks:
                hook(name, version)

    # Introspection for tests / leak assertions -------------------------
    def pinned_version_count(self) -> int:
        """Number of (name, version) pairs currently pinned by snapshots."""
        with self._lock:
            return len(self._pins)

    def retained_version_count(self) -> int:
        """Number of replaced-but-still-pinned table versions retained."""
        with self._lock:
            return len(self._retained)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def table(self, name: str) -> Table:
        """Return the table registered under ``name``."""
        with self._lock:
            try:
                return self._tables[name]
            except KeyError:
                raise CatalogError(f"table {name!r} is not registered") from None

    def version(self, name: str) -> int:
        """Monotonic version of the table registered under ``name``.

        Bumped every time a table is (re-)registered under the name; never
        reused, even across unregister/register cycles.  Execution-artifact
        caches key on it so a table change invalidates every artifact built
        over the old contents.
        """
        with self._lock:
            if name not in self._tables:
                raise CatalogError(f"table {name!r} is not registered")
            return self._versions[name]

    def statistics(self, name: str) -> TableStatistics:
        """Return the statistics for the table registered under ``name``."""
        with self._lock:
            try:
                return self._stats[name]
            except KeyError:
                raise CatalogError(f"table {name!r} is not registered") from None

    @property
    def encodings(self) -> EncodingStore:
        """The per-column encoding / zone-map store (lazy, version-keyed)."""
        return self._encodings

    def has_table(self, name: str) -> bool:
        """True when a table with that name is registered."""
        with self._lock:
            return name in self._tables

    def table_names(self) -> list[str]:
        """Names of all registered tables, in registration order."""
        with self._lock:
            return list(self._tables)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._tables

    def __iter__(self) -> Iterator[Table]:
        with self._lock:
            return iter(list(self._tables.values()))

    def __len__(self) -> int:
        with self._lock:
            return len(self._tables)

    def total_rows(self) -> int:
        """Total number of rows across all registered tables."""
        with self._lock:
            return sum(t.num_rows for t in self._tables.values())

    def largest_table(self) -> Optional[str]:
        """Name of the registered table with the most rows, or None if empty."""
        with self._lock:
            if not self._tables:
                return None
            return max(self._tables, key=lambda n: self._tables[n].num_rows)


def _compute_statistics(table: Table) -> TableStatistics:
    """Compute per-column distinct counts for a freshly registered table."""
    distinct = {col.name: col.distinct_count() for col in table.columns}
    return TableStatistics(num_rows=table.num_rows, distinct_counts=distinct)
