"""Column: a named, typed, immutable vector of values.

A :class:`Column` wraps a NumPy array together with a logical
:class:`~repro.storage.datatypes.DataType`.  String columns are dictionary
encoded: ``data`` holds ``int64`` codes and ``dictionary`` holds the distinct
string values, so joins and filters on strings operate on integer arrays.

Columns are value objects: operations such as :meth:`take` and
:meth:`filter` return new columns and never mutate the receiver.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Optional, Sequence

import numpy as np

from repro.errors import SchemaError
from repro.storage.datatypes import DataType, coerce_to_numpy, infer_datatype


@dataclass(frozen=True)
class Column:
    """A named, typed column backed by a NumPy array.

    Attributes
    ----------
    name:
        Column name, unique within its table.
    dtype:
        Logical datatype.
    data:
        Physical NumPy array.  For ``STRING`` columns this is the ``int64``
        dictionary-code array.
    dictionary:
        For ``STRING`` columns, the list of distinct values such that
        ``dictionary[code]`` recovers the original string.  ``None`` for all
        other types.
    """

    name: str
    dtype: DataType
    data: np.ndarray
    dictionary: Optional[tuple[str, ...]] = field(default=None)

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("column name must be non-empty")
        if self.dtype is DataType.STRING and self.dictionary is None:
            raise SchemaError(f"string column {self.name!r} requires a dictionary")
        if self.dtype is not DataType.STRING and self.dictionary is not None:
            raise SchemaError(f"non-string column {self.name!r} must not carry a dictionary")
        if self.data.ndim != 1:
            raise SchemaError(f"column {self.name!r} data must be one-dimensional")

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_values(
        cls,
        name: str,
        values: Sequence[Any] | np.ndarray,
        dtype: Optional[DataType] = None,
    ) -> "Column":
        """Build a column from raw Python / NumPy values.

        Strings are dictionary-encoded.  ``dtype`` may be supplied to force a
        specific logical type (e.g. ``DATE`` for integers representing days).
        """
        inferred = dtype or infer_datatype(values)
        if inferred is DataType.STRING:
            str_values = [str(v) for v in np.asarray(values, dtype=object)]
            uniques = sorted(set(str_values))
            code_of = {v: i for i, v in enumerate(uniques)}
            codes = np.fromiter((code_of[v] for v in str_values), dtype=np.int64, count=len(str_values))
            return cls(name=name, dtype=inferred, data=codes, dictionary=tuple(uniques))
        return cls(name=name, dtype=inferred, data=coerce_to_numpy(values, inferred))

    @classmethod
    def from_codes(cls, name: str, codes: np.ndarray, dictionary: Sequence[str]) -> "Column":
        """Build a string column directly from dictionary codes."""
        return cls(
            name=name,
            dtype=DataType.STRING,
            data=np.asarray(codes, dtype=np.int64),
            dictionary=tuple(dictionary),
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return int(self.data.shape[0])

    @property
    def num_rows(self) -> int:
        """Number of rows in the column."""
        return len(self)

    def distinct_count(self) -> int:
        """Number of distinct values (exact)."""
        if len(self) == 0:
            return 0
        return int(np.unique(self.data).shape[0])

    def min_max(self) -> tuple[Any, Any]:
        """Return the (decoded) minimum and maximum values in the column."""
        if len(self) == 0:
            raise SchemaError(f"column {self.name!r} is empty; min/max undefined")
        lo, hi = self.data.min(), self.data.max()
        if self.dtype is DataType.STRING:
            assert self.dictionary is not None
            return self.dictionary[int(lo)], self.dictionary[int(hi)]
        return lo, hi

    # ------------------------------------------------------------------
    # Value access
    # ------------------------------------------------------------------
    def decode(self) -> np.ndarray:
        """Return the column with strings decoded back to Python objects.

        For non-string columns this is simply the underlying array.
        """
        if self.dtype is DataType.STRING:
            assert self.dictionary is not None
            lookup = np.asarray(self.dictionary, dtype=object)
            return lookup[self.data]
        return self.data

    def to_list(self) -> list[Any]:
        """Return the column as a plain Python list of decoded values."""
        return self.decode().tolist()

    def encode_literal(self, value: Any) -> Any:
        """Translate a literal into the physical domain of this column.

        For string columns the literal is mapped to its dictionary code; a
        value absent from the dictionary maps to ``-1`` which can never match
        any stored code (codes are non-negative).
        """
        if self.dtype is DataType.STRING:
            assert self.dictionary is not None
            try:
                return self.dictionary.index(str(value))
            except ValueError:
                return -1
        return value

    # ------------------------------------------------------------------
    # Transformations (all return new columns)
    # ------------------------------------------------------------------
    def take(self, indices: np.ndarray) -> "Column":
        """Gather rows by position."""
        return Column(
            name=self.name,
            dtype=self.dtype,
            data=self.data[indices],
            dictionary=self.dictionary,
        )

    def filter(self, mask: np.ndarray) -> "Column":
        """Keep rows where ``mask`` is True."""
        return Column(
            name=self.name,
            dtype=self.dtype,
            data=self.data[mask],
            dictionary=self.dictionary,
        )

    def rename(self, name: str) -> "Column":
        """Return a copy of the column under a new name."""
        return Column(name=name, dtype=self.dtype, data=self.data, dictionary=self.dictionary)

    def concat(self, other: "Column") -> "Column":
        """Concatenate two columns of the same name and type."""
        if self.dtype is not other.dtype:
            raise SchemaError(
                f"cannot concat columns of different types: {self.dtype} vs {other.dtype}"
            )
        if self.dtype is DataType.STRING:
            merged, left_codes, right_codes = _merge_dictionaries(self, other)
            return Column(
                name=self.name,
                dtype=self.dtype,
                data=np.concatenate([left_codes, right_codes]),
                dictionary=merged,
            )
        return Column(
            name=self.name,
            dtype=self.dtype,
            data=np.concatenate([self.data, other.data]),
            dictionary=None,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Column({self.name!r}, {self.dtype.value}, n={len(self)})"


def _merge_dictionaries(left: Column, right: Column) -> tuple[tuple[str, ...], np.ndarray, np.ndarray]:
    """Merge the dictionaries of two string columns and re-map their codes."""
    assert left.dictionary is not None and right.dictionary is not None
    merged = sorted(set(left.dictionary) | set(right.dictionary))
    code_of = {v: i for i, v in enumerate(merged)}
    left_map = np.asarray([code_of[v] for v in left.dictionary], dtype=np.int64)
    right_map = np.asarray([code_of[v] for v in right.dictionary], dtype=np.int64)
    left_codes = left_map[left.data] if len(left) else left.data
    right_codes = right_map[right.data] if len(right) else right.data
    return tuple(merged), left_codes, right_codes


def concat_columns(columns: Iterable[Column]) -> Column:
    """Concatenate an iterable of compatible columns into one."""
    columns = list(columns)
    if not columns:
        raise SchemaError("concat_columns requires at least one column")
    result = columns[0]
    for col in columns[1:]:
        result = result.concat(col)
    return result
