"""Logical column datatypes for the columnar storage layer.

The engine stores every column as a NumPy array.  The :class:`DataType`
enumeration describes the *logical* type of a column; the mapping to a
physical NumPy dtype is handled here so the rest of the engine never has to
reason about NumPy dtypes directly.

Strings are dictionary-encoded: a string column is stored as an ``int64``
code array plus a Python list of distinct values (see
:class:`repro.storage.column.Column`).  Dictionary encoding keeps every hot
path (joins, Bloom filters, comparisons against literals) operating on
integer arrays, which mirrors how analytical engines such as DuckDB execute
on compressed/dictionary data.
"""

from __future__ import annotations

import enum
from typing import Any

import numpy as np

from repro.errors import SchemaError


class DataType(enum.Enum):
    """Logical column types supported by the engine."""

    INT64 = "int64"
    FLOAT64 = "float64"
    STRING = "string"
    DATE = "date"  # stored as int64 days since epoch
    BOOL = "bool"

    @property
    def numpy_dtype(self) -> np.dtype:
        """Return the physical NumPy dtype used to store this logical type."""
        return _NUMPY_DTYPES[self]

    @property
    def is_integer_backed(self) -> bool:
        """True when the physical representation is an integer array.

        Integer-backed columns (ints, dates, dictionary-encoded strings,
        bools) can be used directly as join keys and Bloom-filter inputs.
        """
        return self in (DataType.INT64, DataType.DATE, DataType.STRING, DataType.BOOL)


_NUMPY_DTYPES = {
    DataType.INT64: np.dtype(np.int64),
    DataType.FLOAT64: np.dtype(np.float64),
    DataType.STRING: np.dtype(np.int64),  # dictionary codes
    DataType.DATE: np.dtype(np.int64),
    DataType.BOOL: np.dtype(np.bool_),
}


def infer_datatype(values: Any) -> DataType:
    """Infer the logical :class:`DataType` for a sequence of Python values.

    Parameters
    ----------
    values:
        Any sequence or NumPy array of values.

    Raises
    ------
    SchemaError
        If the values are empty or of an unsupported type.
    """
    arr = np.asarray(values)
    if arr.size == 0:
        raise SchemaError("cannot infer datatype from an empty sequence")
    if arr.dtype.kind in ("i", "u"):
        return DataType.INT64
    if arr.dtype.kind == "f":
        return DataType.FLOAT64
    if arr.dtype.kind == "b":
        return DataType.BOOL
    if arr.dtype.kind in ("U", "S", "O"):
        return DataType.STRING
    raise SchemaError(f"unsupported value dtype: {arr.dtype!r}")


def coerce_to_numpy(values: Any, dtype: DataType) -> np.ndarray:
    """Coerce ``values`` to the physical NumPy array for ``dtype``.

    String columns are *not* handled here (they need dictionary encoding,
    which is owned by :class:`repro.storage.column.Column`); passing
    ``DataType.STRING`` raises :class:`SchemaError`.
    """
    if dtype is DataType.STRING:
        raise SchemaError("string columns must be dictionary-encoded via Column.from_values")
    try:
        return np.asarray(values, dtype=dtype.numpy_dtype)
    except (TypeError, ValueError) as exc:
        raise SchemaError(f"cannot coerce values to {dtype.value}: {exc}") from exc
