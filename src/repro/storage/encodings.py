"""Block-encoded columns: dictionary, run-length, and bit-packed layouts.

Every :class:`~repro.storage.column.Column` stores its physical values as
a flat ``int64`` array (string columns as dictionary codes).  This module
adds a lossless *encoded* representation chosen per column by cheap
probes, plus the per-block zone maps that let filters skip whole blocks:

* ``pack`` — frame-of-reference bit-packing: ``value - base`` stored in
  the narrowest unsigned width that fits the domain (widths are rounded
  up to 8/16/32 bits so blocks stay zero-copy NumPy views).
* ``dict`` — dictionary encoding for low-NDV columns whose value domain
  is too wide to pack: a sorted ``int64`` value array plus narrow codes
  indexing it.  String columns reuse their existing dictionary — their
  physical codes are simply packed.
* ``rle`` — run-length encoding for sorted / clustered data: run start
  offsets plus run values; point gathers answer through one
  ``searchsorted``.

The decision procedure (:func:`choose_encoding`) runs at table
registration time from two probes — the run count (sortedness /
clustering) and the distinct count (taken from exact catalog statistics
when available, otherwise a KMV sketch) — and picks whichever encoding
stores the fewest bytes, requiring at least 2x compression so marginal
encodings never pay their decode cost.

Decoding is exact: ``EncodedColumn.decode(selection)`` reproduces the
original physical ``int64`` values bit-for-bit, which is what makes the
engine's encoded execution paths bit-identical to raw execution.

:class:`EncodingStore` is the catalog-owned cache mapping
``(table name, version, column)`` to its encoded form and zone map, both
built lazily on first use and invalidated when a table is replaced.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Tuple

import numpy as np

from repro.storage.column import Column
from repro.storage.zonemap import DEFAULT_BLOCK_ROWS, ZoneMap

#: Encodings must shrink the column by at least this factor to be chosen;
#: below it the decode indirection is not worth the bytes saved.
MIN_COMPRESSION_RATIO = 2.0

#: Dictionary encoding is only considered up to this many distinct values
#: (codes then fit 16 bits).
MAX_DICT_NDV = 1 << 16


def _code_dtype(max_code: int) -> np.dtype:
    """Narrowest unsigned dtype holding codes in ``[0, max_code]``."""
    if max_code < (1 << 8):
        return np.dtype(np.uint8)
    if max_code < (1 << 16):
        return np.dtype(np.uint16)
    return np.dtype(np.uint32)


@dataclass(frozen=True)
class EncodedColumn:
    """A losslessly encoded physical column plus its zone map.

    Attributes
    ----------
    encoding:
        ``"pack"``, ``"dict"`` or ``"rle"``.
    codes:
        ``pack``/``dict``: narrow unsigned per-row codes.  ``rle``: the
        ``int64`` run start offsets (ascending, first element 0).
    values:
        ``dict``: sorted distinct physical values (``int64``).  ``rle``:
        the per-run physical values.  ``pack``: ``None``.
    base:
        ``pack``: frame-of-reference offset (``decoded = codes + base``).
    num_rows:
        Logical row count.
    zone_map:
        Per-block min/max over the *decoded* physical values.
    """

    encoding: str
    codes: np.ndarray
    values: Optional[np.ndarray]
    base: int
    num_rows: int
    zone_map: ZoneMap

    @property
    def encoded_bytes(self) -> int:
        """Bytes of the encoded buffers (excluding zone-map metadata)."""
        total = int(self.codes.nbytes)
        if self.values is not None:
            total += int(self.values.nbytes)
        return total

    @property
    def logical_bytes(self) -> int:
        """Bytes of the raw ``int64`` representation this replaces."""
        return self.num_rows * 8

    @property
    def token(self) -> str:
        """Short identity string (used in artifact-cache keys)."""
        if self.encoding == "rle":
            return f"rle:r{int(self.codes.shape[0])}"
        width = self.codes.dtype.itemsize * 8
        if self.encoding == "dict":
            return f"dict:u{width}:n{int(self.values.shape[0])}"
        return f"pack:u{width}:b{self.base}"

    # ------------------------------------------------------------------
    # Decoding
    # ------------------------------------------------------------------
    def decode(self, selection: Optional[np.ndarray] = None) -> np.ndarray:
        """Physical ``int64`` values, optionally gathered by ``selection``."""
        # Imported lazily: the exec package's initializer imports this
        # module's package mid-init.
        from repro.exec import faults

        faults.fire("column.decode", f"injected decode failure ({self.encoding} column)")
        if self.encoding == "rle":
            if selection is None:
                lengths = np.diff(np.concatenate([self.codes, [self.num_rows]]))
                return np.repeat(self.values, lengths)
            runs = np.searchsorted(self.codes, selection, side="right") - 1
            return self.values[runs]
        codes = self.codes if selection is None else self.codes[selection]
        if self.encoding == "dict":
            return self.values[codes]
        decoded = codes.astype(np.int64)
        if self.base:
            decoded += self.base
        return decoded

    def iter_blocks(self, block_rows: Optional[int] = None) -> Iterator[Tuple[int, np.ndarray]]:
        """Yield ``(row_start, block)`` pairs covering the column in order.

        For ``pack``/``dict`` each block is a zero-copy view of the code
        array; for ``rle`` blocks are materialized per yield (runs do not
        align with block boundaries).
        """
        step = block_rows or self.zone_map.block_rows
        if self.encoding == "rle":
            for start in range(0, self.num_rows, step):
                stop = min(start + step, self.num_rows)
                yield start, self.decode(np.arange(start, stop, dtype=np.int64))
            return
        for start in range(0, self.num_rows, step):
            yield start, self.codes[start : start + step]


# ---------------------------------------------------------------------------
# Encoding selection
# ---------------------------------------------------------------------------
def _estimate_distinct(data: np.ndarray) -> int:
    """KMV-sketch distinct estimate (used when exact statistics are absent)."""
    from repro.optimizer.cardinality import KMVSketch

    return max(1, int(round(KMVSketch.from_values(data).estimate)))


def choose_encoding(
    column: Column,
    distinct_count: Optional[int] = None,
    block_rows: int = DEFAULT_BLOCK_ROWS,
) -> Optional[EncodedColumn]:
    """Probe one column and build its best encoding, or ``None`` for raw.

    Probes are O(n) vectorized passes: the run count decides RLE, the
    value bounds decide bit-packing, and the distinct count (exact when
    the caller has catalog statistics, else a KMV estimate) gates the
    dictionary form.  The cheapest layout wins, subject to
    :data:`MIN_COMPRESSION_RATIO`.
    """
    if not column.dtype.is_integer_backed:
        return None
    data = column.data
    n = int(data.shape[0])
    if n == 0:
        return None
    data = np.ascontiguousarray(data, dtype=np.int64)
    raw_bytes = n * 8

    run_breaks = int(np.count_nonzero(data[1:] != data[:-1])) if n > 1 else 0
    num_runs = run_breaks + 1
    rle_bytes = num_runs * 16  # int64 start + int64 value per run

    lo = int(data.min())
    hi = int(data.max())
    width = hi - lo
    pack_bytes: Optional[int] = None
    if width < (1 << 32):
        pack_bytes = n * _code_dtype(width).itemsize

    ndv = distinct_count if distinct_count is not None else _estimate_distinct(data)
    dict_bytes: Optional[int] = None
    if ndv <= MAX_DICT_NDV:
        dict_bytes = n * _code_dtype(max(ndv - 1, 0)).itemsize + ndv * 8

    candidates = [("rle", rle_bytes)]
    if pack_bytes is not None:
        candidates.append(("pack", pack_bytes))
    if dict_bytes is not None:
        candidates.append(("dict", dict_bytes))
    encoding, estimated = min(candidates, key=lambda item: (item[1], item[0]))
    if estimated * MIN_COMPRESSION_RATIO > raw_bytes:
        return None

    zone_map = ZoneMap.build(data, block_rows)
    if encoding == "rle":
        starts = np.concatenate(
            [np.zeros(1, dtype=np.int64), np.flatnonzero(data[1:] != data[:-1]) + 1]
        )
        return EncodedColumn(
            encoding="rle",
            codes=starts,
            values=data[starts].copy(),
            base=0,
            num_rows=n,
            zone_map=zone_map,
        )
    if encoding == "dict":
        values = np.unique(data)
        # The probe may have used an NDV *estimate*; fall back to packing
        # if the exact dictionary would not actually fit narrow codes.
        if values.shape[0] <= MAX_DICT_NDV:
            codes = np.searchsorted(values, data).astype(_code_dtype(values.shape[0] - 1))
            return EncodedColumn(
                encoding="dict",
                codes=codes,
                values=values,
                base=0,
                num_rows=n,
                zone_map=zone_map,
            )
        encoding = "pack"
    if pack_bytes is None or pack_bytes * MIN_COMPRESSION_RATIO > raw_bytes:
        return None
    codes = (data - lo).astype(_code_dtype(width))
    return EncodedColumn(
        encoding="pack", codes=codes, values=None, base=lo, num_rows=n, zone_map=zone_map
    )


# ---------------------------------------------------------------------------
# The catalog-owned store
# ---------------------------------------------------------------------------
class EncodingStore:
    """Caches encodings and zone maps per ``(table, version, column)``.

    Owned by a :class:`~repro.storage.catalog.Catalog`; the catalog
    invalidates a table's entries whenever it is (re-)registered, so the
    version in the key can never serve stale buffers.  Encoded forms are
    built lazily on first use — registration only pays for the statistics
    the catalog already computes.

    Thread safety: the store's own lock guards only its dicts.  Keys are
    computed (which calls back into the catalog, taking the catalog lock)
    *before* the store lock is taken — never the other way round — so the
    catalog can safely invalidate this store from ``register()``.  Two
    threads may race to build the same entry; the loser's build is
    discarded (``setdefault``), which is benign — both built from the same
    pinned column data.
    """

    def __init__(self, catalog) -> None:
        self.catalog = catalog
        self._lock = threading.Lock()
        self._encoded: Dict[Tuple[str, int, str], Optional[EncodedColumn]] = {}
        self._zone_maps: Dict[Tuple[str, int, str], Optional[ZoneMap]] = {}

    def _key(self, table, column: str) -> Optional[Tuple[str, int, str]]:
        try:
            version = self.catalog.version(table.name)
        except Exception:
            return None
        if self.catalog.table(table.name) is not table:
            return None
        return (table.name, version, column)

    def encoded(self, table, column: str) -> Optional[EncodedColumn]:
        """The encoded form of ``table.column(column)``, or ``None`` for raw."""
        key = self._key(table, column)
        if key is None:
            return None
        with self._lock:
            if key in self._encoded:
                return self._encoded[key]
        col = table.column(column)
        distinct = None
        try:
            distinct = self.catalog.statistics(table.name).distinct(column)
        except Exception:
            distinct = None
        built = choose_encoding(col, distinct_count=distinct)
        with self._lock:
            return self._encoded.setdefault(key, built)

    def zone_map(self, table, column: str) -> Optional[ZoneMap]:
        """The zone map over ``table.column(column)``'s physical values.

        Available for every integer-backed column — raw columns benefit
        from block skipping too; the encoded form just reuses its map.
        """
        key = self._key(table, column)
        if key is None:
            return None
        with self._lock:
            if key in self._zone_maps:
                return self._zone_maps[key]
        encoded = self.encoded(table, column)
        if encoded is not None:
            built: Optional[ZoneMap] = encoded.zone_map
        else:
            col = table.column(column)
            if not col.dtype.is_integer_backed or col.num_rows == 0:
                built = None
            else:
                built = ZoneMap.build(col.data)
        with self._lock:
            if key in self._zone_maps:
                return self._zone_maps[key]
            self._zone_maps[key] = built
            return built

    def token(self, table, column: str) -> str:
        """Encoding identity of a column (``"raw"`` when unencoded)."""
        encoded = self.encoded(table, column)
        return "raw" if encoded is None else encoded.token

    def encoded_bytes(self, table, column: str) -> int:
        """Encoded bytes of a column (logical bytes when unencoded)."""
        encoded = self.encoded(table, column)
        if encoded is None:
            return int(table.column(column).data.nbytes)
        return encoded.encoded_bytes

    def invalidate_table(self, name: str) -> None:
        """Drop every cached entry of ``name`` (any version)."""
        with self._lock:
            for cache in (self._encoded, self._zone_maps):
                for key in [k for k in cache if k[0] == name]:
                    del cache[key]

    def clear(self) -> None:
        """Drop every cached entry."""
        with self._lock:
            self._encoded.clear()
            self._zone_maps.clear()
