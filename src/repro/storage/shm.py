"""Shared-memory column arena: zero-copy base columns for process workers.

The process backend (:mod:`repro.exec.process`) fans probe morsels out to
worker *processes*.  Shipping a 1M-row key column through a pickle pipe per
morsel would erase the parallel win, so immutable base-table columns are
placed once in ``multiprocessing.shared_memory`` segments and workers attach
by name — a task message then carries only (segment name, dtype, shape,
morsel range).

Three layers live here:

* low-level segment bookkeeping — every segment this process *creates* is
  recorded in a module registry so leaks are detectable
  (:func:`live_segment_count` / :func:`assert_no_leaks`) and an ``atexit``
  hook unlinks anything still live at interpreter shutdown;
* :class:`ShmArrayRef` — a picklable handle (name, dtype, shape) that
  workers resolve with :func:`attach_array`;
* :class:`SharedColumnArena` — the owner-side cache mapping
  ``(table name, catalog version, column)`` to a published segment.  The
  key includes :meth:`~repro.storage.catalog.Catalog.version`, so replacing
  a table can never alias stale segment contents, and
  :meth:`~SharedColumnArena.invalidate_table` eagerly unlinks the replaced
  table's segments.

Python < 3.13 registers *attaching* processes with the resource tracker
too (bpo-39959); under the spawn start method the worker's tracker would
then unlink segments the parent still uses when the worker exits.
:func:`attach_array` therefore unregisters the segment immediately after
attaching — unless this process shares the creator's tracker (fork-started
pool workers; see ``_UNREGISTER_ON_ATTACH``).  Only the creating process
ever unlinks.
"""

from __future__ import annotations

import atexit
import os
import threading
import weakref
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from typing import Dict, Optional, Tuple

import numpy as np

from repro.errors import ExecutionError
from repro.exec import faults

#: Name prefix of every segment this library creates; the test suite scans
#: ``/dev/shm`` for the prefix to prove nothing leaked past a run.
SEGMENT_PREFIX = "repro_shm"

#: Injected ``shm.unlink`` faults are transient: retried this many times,
#: after which the unlink proceeds anyway — a fault plan can therefore delay
#: an unlink but never leak a segment.
_UNLINK_FAULT_RETRIES = 3

#: Created (owned) segments of *this* process: name -> (SharedMemory, pid).
#: The pid guards forked children, which inherit the dict but must never
#: unlink their parent's segments.
_LIVE: Dict[str, Tuple[shared_memory.SharedMemory, int]] = {}
_COUNTER = 0

#: Guards ``_LIVE`` and ``_COUNTER``: concurrent server queries create and
#: unlink transient segments from many threads, and an unguarded counter
#: increment could mint duplicate segment names.
_REGISTRY_LOCK = threading.Lock()


def _next_name() -> str:
    global _COUNTER
    with _REGISTRY_LOCK:
        _COUNTER += 1
        counter = _COUNTER
    return f"{SEGMENT_PREFIX}_{os.getpid()}_{counter}"


def create_segment(nbytes: int) -> shared_memory.SharedMemory:
    """Create (and register) a shared-memory segment owned by this process."""
    segment = shared_memory.SharedMemory(create=True, size=max(int(nbytes), 1), name=_next_name())
    with _REGISTRY_LOCK:
        _LIVE[segment.name] = (segment, os.getpid())
    return segment


def unlink_segment(segment: shared_memory.SharedMemory) -> None:
    """Close and unlink an owned segment; idempotent, fork-safe."""
    with _REGISTRY_LOCK:
        entry = _LIVE.pop(segment.name, None)
    if entry is not None and entry[1] != os.getpid():
        # A forked child inherited the registry; the parent owns the segment.
        return
    # Injected unlink faults model a transiently-busy segment: retry a
    # bounded number of times, then unlink regardless — the leak invariant
    # must hold under every fault plan.
    for _ in range(_UNLINK_FAULT_RETRIES):
        if not faults.should_fire("shm.unlink"):
            break
    try:
        segment.close()
    except (OSError, BufferError):  # pragma: no cover - platform dependent
        pass
    try:
        segment.unlink()
    except FileNotFoundError:
        pass


def live_segment_count() -> int:
    """Segments created by this process and not yet unlinked."""
    pid = os.getpid()
    with _REGISTRY_LOCK:
        return sum(1 for _, owner in _LIVE.values() if owner == pid)


def live_segment_names() -> Tuple[str, ...]:
    """Names of this process's live segments (for leak diagnostics)."""
    pid = os.getpid()
    with _REGISTRY_LOCK:
        return tuple(name for name, (_, owner) in _LIVE.items() if owner == pid)


def assert_no_leaks() -> None:
    """Raise when this process still owns shared-memory segments."""
    names = live_segment_names()
    if names:
        raise ExecutionError(f"leaked shared-memory segments: {sorted(names)}")


#: Every live :class:`SharedColumnArena` (weakly held): lets leak checks
#: distinguish arena-published segments — owned, persistent by design until
#: ``Database.close()`` — from transient segments that must never outlive a
#: query, even a faulted one.
_ARENAS: "weakref.WeakSet" = weakref.WeakSet()


def published_segment_names() -> Tuple[str, ...]:
    """Names of segments currently published by any live arena."""
    names = []
    for arena in list(_ARENAS):
        names.extend(arena.segment_names())
    return tuple(names)


def assert_no_transient_leaks() -> None:
    """Raise when a non-arena segment is still live.

    The per-test / per-query leak invariant: after any execution — faulted,
    timed out, cancelled, crashed — the only segments this process may still
    own are the arena-published base columns.
    """
    leaked = set(live_segment_names()) - set(published_segment_names())
    if leaked:
        raise ExecutionError(f"leaked transient shared-memory segments: {sorted(leaked)}")


def release_all() -> None:
    """Unlink every segment this process still owns (shutdown / test teardown)."""
    pid = os.getpid()
    with _REGISTRY_LOCK:
        entries = list(_LIVE.items())
    for name, (segment, owner) in entries:
        if owner == pid:
            unlink_segment(segment)
        else:
            with _REGISTRY_LOCK:
                _LIVE.pop(name, None)


atexit.register(release_all)


# ---------------------------------------------------------------------------
# Picklable array references
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ShmArrayRef:
    """A picklable reference to a NumPy array living in a shared segment."""

    name: str
    dtype: str
    shape: Tuple[int, ...]

    @property
    def nbytes(self) -> int:
        """Bytes of the referenced array (not the segment, which may round up)."""
        count = 1
        for dim in self.shape:
            count *= dim
        return count * np.dtype(self.dtype).itemsize


def share_array(array: np.ndarray) -> Tuple[shared_memory.SharedMemory, ShmArrayRef]:
    """Copy ``array`` into a fresh owned segment and return (segment, ref)."""
    faults.fire("shm.share", "injected fault publishing array to shared memory")
    array = np.ascontiguousarray(array)
    segment = create_segment(array.nbytes)
    if array.nbytes:
        view = np.ndarray(array.shape, dtype=array.dtype, buffer=segment.buf)
        view[...] = array
    return segment, ShmArrayRef(name=segment.name, dtype=array.dtype.str, shape=array.shape)


@dataclass(frozen=True)
class EncodedColumnRef:
    """A picklable reference to an *encoded* column in shared memory.

    Ships the narrow code buffer (plus, for dictionary encodings, the
    ``int64`` value array) instead of the flat ``int64`` column — workers
    decode gathered codes back to the exact physical values, so probes
    stay bit-identical while the mapped bytes shrink by the code width.
    """

    codes: ShmArrayRef
    values: Optional[ShmArrayRef]
    base: int

    @property
    def name(self) -> str:
        """Primary segment name (used for governor reservation keys)."""
        return self.codes.name

    @property
    def nbytes(self) -> int:
        """Encoded bytes behind this ref (codes plus dictionary values)."""
        total = self.codes.nbytes
        if self.values is not None:
            total += self.values.nbytes
        return total

    @property
    def shape(self) -> Tuple[int, ...]:
        """Logical row shape (mirrors :class:`ShmArrayRef`)."""
        return self.codes.shape


def gather_encoded(ref: EncodedColumnRef, selection: np.ndarray) -> np.ndarray:
    """Gather + decode rows of an encoded shared column in this process.

    Returns exactly ``raw_column[selection]`` — the decode is lossless, so
    worker-side probes over encoded segments match owner-side execution
    bit for bit.
    """
    codes = attach_array(ref.codes)[selection]
    if ref.values is not None:
        values = attach_array(ref.values)
        return values[codes]
    decoded = codes.astype(np.int64)
    if ref.base:
        decoded += ref.base
    return decoded


#: Worker-side cache of attached segments: ref name -> (segment, array).
#: Bounded so long-running workers do not accumulate mappings of segments
#: the parent has already unlinked (the mapping itself stays valid on
#: POSIX after an unlink; only the memory is pinned until close).
_ATTACHED: Dict[str, Tuple[shared_memory.SharedMemory, np.ndarray]] = {}
_ATTACH_CACHE_LIMIT = 64

#: Guards ``_ATTACHED``: worker processes are single-threaded, but the
#: owner process also attaches (inline crash-recovery fallback and encoded
#: gathers) and may do so from many server threads at once.
_ATTACH_LOCK = threading.Lock()

#: Whether :func:`attach_array` must undo the resource-tracker registration
#: Python < 3.13 performs on attach.  True for processes with their *own*
#: tracker (spawn workers: their tracker would otherwise unlink segments the
#: creator still uses when the worker exits).  Fork-started pool workers
#: share the parent's tracker process, where the attach registration is an
#: idempotent no-op and an unregister would strip the creator's own entry —
#: the pool initializer flips this flag accordingly.
_UNREGISTER_ON_ATTACH = True


def attach_array(ref: ShmArrayRef) -> np.ndarray:
    """Resolve a :class:`ShmArrayRef` in this (worker) process.

    The attached segment is cached by name — segment names are never reused
    within a process, so a cached mapping can never alias different data.
    """
    with _ATTACH_LOCK:
        cached = _ATTACHED.get(ref.name)
        if cached is not None:
            return cached[1]
    faults.fire("shm.attach", f"injected fault attaching segment {ref.name}")
    segment = shared_memory.SharedMemory(name=ref.name)
    if _UNREGISTER_ON_ATTACH and ref.name not in _LIVE:
        try:
            resource_tracker.unregister(segment._name, "shared_memory")  # type: ignore[attr-defined]
        except Exception:  # pragma: no cover - tracker internals vary
            pass
    array = np.ndarray(ref.shape, dtype=np.dtype(ref.dtype), buffer=segment.buf)
    with _ATTACH_LOCK:
        existing = _ATTACHED.get(ref.name)
        if existing is not None:
            # Lost a race to attach the same segment: keep the first
            # mapping (arrays over it may already be in use) and drop ours.
            try:
                segment.close()
            except (OSError, BufferError):  # pragma: no cover
                pass
            return existing[1]
        if len(_ATTACHED) >= _ATTACH_CACHE_LIMIT:
            evict_name, (evict_segment, _) = next(iter(_ATTACHED.items()))
            _ATTACHED.pop(evict_name, None)
            try:
                evict_segment.close()
            except (OSError, BufferError):  # pragma: no cover
                pass
        _ATTACHED[ref.name] = (segment, array)
    return array


def detach_all() -> None:
    """Close every cached worker-side attachment (worker shutdown)."""
    with _ATTACH_LOCK:
        segments = [segment for segment, _ in _ATTACHED.values()]
        _ATTACHED.clear()
    for segment in segments:
        try:
            segment.close()
        except (OSError, BufferError):  # pragma: no cover
            pass


# ---------------------------------------------------------------------------
# The owner-side column arena
# ---------------------------------------------------------------------------
class SharedColumnArena:
    """Publishes immutable base-table columns into shared-memory segments.

    Owned by a :class:`~repro.engine.database.Database`; the pipeline
    executor asks for :meth:`column_ref` when the active backend ships
    probes to worker processes.  Segments are keyed by
    ``(table name, catalog version, column)`` — the same version the
    artifact cache keys on — so a table replace both *misses* the old key
    (new version) and unlinks the old segments once the catalog's release
    hooks fire :meth:`invalidate_version` (release-driven: a replace while
    a snapshot still reads the old version defers the unlink until the
    last reader lets go, so in-flight workers never lose their columns).
    """

    def __init__(self, catalog) -> None:
        self.catalog = catalog
        self._lock = threading.Lock()
        self._segments: Dict[
            Tuple[str, int, str, bool], Tuple[Tuple[shared_memory.SharedMemory, ...], object]
        ] = {}
        _ARENAS.add(self)

    def column_ref(self, table, column: str, encoded: bool = False):
        """A shared-memory ref for ``table.column(column)``, publishing on demand.

        Returns ``None`` when the column cannot be shared: the table is not
        (or no longer) the catalog's current registration under its name, or
        the column is not integer-backed (join keys always are).

        With ``encoded=True`` and a dictionary / bit-packed encoding
        available from the catalog's :class:`~repro.storage.encodings.EncodingStore`,
        the *encoded* buffers are published instead (an
        :class:`EncodedColumnRef`), shrinking the mapped footprint; RLE
        columns and unencoded columns fall back to the raw ``int64`` array.
        """
        try:
            version = self.catalog.version(table.name)
        except Exception:
            return None
        if self.catalog.table(table.name) is not table:
            return None
        col = table.column(column)
        if not col.dtype.is_integer_backed:
            return None
        encoded_column = None
        if encoded:
            try:
                candidate = self.catalog.encodings.encoded(table, column)
            except Exception:
                candidate = None
            # Point gathers over RLE would searchsorted per morsel row;
            # only gather-friendly layouts ship encoded.
            if candidate is not None and candidate.encoding in ("pack", "dict"):
                encoded_column = candidate
        key = (table.name, version, column, encoded_column is not None)
        with self._lock:
            entry = self._segments.get(key)
            if entry is not None:
                return entry[1]
        if encoded_column is not None:
            codes_segment, codes_ref = share_array(encoded_column.codes)
            segments: Tuple[shared_memory.SharedMemory, ...] = (codes_segment,)
            values_ref = None
            if encoded_column.values is not None:
                try:
                    values_segment, values_ref = share_array(encoded_column.values)
                except Exception:
                    # Publishing the dictionary failed after the codes went
                    # up: unlink the half-published pair before propagating.
                    unlink_segment(codes_segment)
                    raise
                segments = (codes_segment, values_segment)
            ref: object = EncodedColumnRef(
                codes=codes_ref, values=values_ref, base=encoded_column.base
            )
        else:
            segment, ref = share_array(col.data)
            segments = (segment,)
        with self._lock:
            existing = self._segments.get(key)
            if existing is None:
                self._segments[key] = (segments, ref)
                return ref
        # Lost a publish race: keep the winner (its ref may already be in
        # worker task messages) and unlink our duplicate segments.
        for segment in segments:
            unlink_segment(segment)
        return existing[1]

    def segment_bytes(self, ref) -> int:
        """Published bytes behind a ref (for MemoryGovernor accounting)."""
        return ref.nbytes

    @property
    def total_bytes(self) -> int:
        """Total bytes currently published by this arena."""
        with self._lock:
            return sum(ref.nbytes for _, ref in self._segments.values())

    @property
    def num_segments(self) -> int:
        """Number of live published segments."""
        with self._lock:
            return sum(len(segments) for segments, _ in self._segments.values())

    def published_keys(self) -> Tuple[Tuple[str, int, str, bool], ...]:
        """The (table, version, column, encoded) keys currently published."""
        with self._lock:
            return tuple(self._segments)

    def segment_names(self) -> Tuple[str, ...]:
        """Names of every OS segment this arena currently publishes."""
        with self._lock:
            return tuple(
                segment.name
                for segments, _ in self._segments.values()
                for segment in segments
            )

    def republish_missing(self) -> int:
        """Verify published segments still exist at the OS level.

        Crash recovery calls this after a worker-pool respawn: a dying
        worker cannot unlink segments it merely attached (ownership stays
        with the arena), but a spawn-mode worker's resource tracker can —
        so every published segment is probed by name, and entries whose OS
        object vanished are dropped from the registry so the next
        :meth:`column_ref` republishes them.  Returns the number of entries
        dropped for republication.
        """
        repaired = 0
        with self._lock:
            entries = list(self._segments.items())
        for key, (segments, _) in entries:
            missing = False
            for segment in segments:
                try:
                    probe = shared_memory.SharedMemory(name=segment.name)
                    probe.close()
                except FileNotFoundError:
                    missing = True
                    break
                except Exception:  # pragma: no cover - platform-specific probe failure
                    continue
            if missing:
                with self._lock:
                    self._segments.pop(key, None)
                for segment in segments:
                    unlink_segment(segment)
                repaired += 1
        return repaired

    def invalidate_table(self, name: str) -> None:
        """Unlink every published segment of ``name`` (any version)."""
        with self._lock:
            stale = [
                self._segments.pop(key)
                for key in [k for k in self._segments if k[0] == name]
            ]
        for segments, _ in stale:
            for segment in segments:
                unlink_segment(segment)

    def invalidate_version(self, name: str, version: int) -> None:
        """Unlink the published segments of one ``(table, version)``.

        Fired by the catalog's release hooks when the last snapshot pinning
        a replaced version releases it — never while a reader can still
        ship the segments to workers.
        """
        with self._lock:
            stale = [
                self._segments.pop(key)
                for key in [
                    k for k in self._segments if k[0] == name and k[1] == version
                ]
            ]
        for segments, _ in stale:
            for segment in segments:
                unlink_segment(segment)

    def close(self) -> None:
        """Unlink every published segment; idempotent."""
        with self._lock:
            entries = list(self._segments.values())
            self._segments.clear()
        for segments, _ in entries:
            for segment in segments:
                unlink_segment(segment)

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass
