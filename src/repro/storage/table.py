"""Table: a named collection of equal-length columns.

Tables are the unit registered in the :class:`~repro.storage.catalog.Catalog`
and scanned by the execution layer.  Like columns they are immutable value
objects: every transformation returns a new :class:`Table`.

A table optionally records *key metadata* — which columns form its primary
key and which columns reference other tables — because the Robust Predicate
Transfer module uses primary-key/foreign-key information to prune trivial
semi-joins (§4.3 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Optional, Sequence

import numpy as np

from repro.errors import SchemaError
from repro.storage.column import Column
from repro.storage.datatypes import DataType


@dataclass(frozen=True)
class ForeignKey:
    """A foreign-key reference from one column to a column of another table."""

    column: str
    ref_table: str
    ref_column: str


@dataclass(frozen=True)
class Table:
    """An immutable, named, columnar table.

    Attributes
    ----------
    name:
        Table name, unique within a catalog.
    columns:
        Ordered mapping of column name to :class:`Column`.
    primary_key:
        Names of columns forming the primary key, if any.
    foreign_keys:
        Declared foreign-key references.
    """

    name: str
    columns: tuple[Column, ...]
    primary_key: tuple[str, ...] = field(default=())
    foreign_keys: tuple[ForeignKey, ...] = field(default=())

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("table name must be non-empty")
        if not self.columns:
            raise SchemaError(f"table {self.name!r} must have at least one column")
        names = [c.name for c in self.columns]
        if len(set(names)) != len(names):
            raise SchemaError(f"table {self.name!r} has duplicate column names")
        lengths = {len(c) for c in self.columns}
        if len(lengths) > 1:
            raise SchemaError(f"table {self.name!r} has columns of differing lengths: {lengths}")
        known = set(names)
        for key_col in self.primary_key:
            if key_col not in known:
                raise SchemaError(f"primary key column {key_col!r} not in table {self.name!r}")
        for fk in self.foreign_keys:
            if fk.column not in known:
                raise SchemaError(f"foreign key column {fk.column!r} not in table {self.name!r}")

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_dict(
        cls,
        name: str,
        data: Mapping[str, Sequence[Any] | np.ndarray],
        dtypes: Optional[Mapping[str, DataType]] = None,
        primary_key: Sequence[str] = (),
        foreign_keys: Sequence[ForeignKey] = (),
    ) -> "Table":
        """Build a table from a mapping of column name to values."""
        dtypes = dict(dtypes or {})
        columns = tuple(
            Column.from_values(col_name, values, dtype=dtypes.get(col_name))
            for col_name, values in data.items()
        )
        return cls(
            name=name,
            columns=columns,
            primary_key=tuple(primary_key),
            foreign_keys=tuple(foreign_keys),
        )

    @classmethod
    def from_columns(
        cls,
        name: str,
        columns: Iterable[Column],
        primary_key: Sequence[str] = (),
        foreign_keys: Sequence[ForeignKey] = (),
    ) -> "Table":
        """Build a table from already-constructed columns."""
        return cls(
            name=name,
            columns=tuple(columns),
            primary_key=tuple(primary_key),
            foreign_keys=tuple(foreign_keys),
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_rows(self) -> int:
        """Number of rows in the table."""
        return len(self.columns[0])

    @property
    def num_columns(self) -> int:
        """Number of columns in the table."""
        return len(self.columns)

    @property
    def column_names(self) -> tuple[str, ...]:
        """Ordered column names."""
        return tuple(c.name for c in self.columns)

    def column(self, name: str) -> Column:
        """Return the column with the given name.

        Raises
        ------
        SchemaError
            If no column with that name exists.
        """
        for col in self.columns:
            if col.name == name:
                return col
        raise SchemaError(f"table {self.name!r} has no column {name!r}")

    def has_column(self, name: str) -> bool:
        """True when the table contains a column with that name."""
        return any(c.name == name for c in self.columns)

    def is_foreign_key(self, column: str) -> bool:
        """True when ``column`` is declared as a foreign key of this table."""
        return any(fk.column == column for fk in self.foreign_keys)

    def is_primary_key(self, column: str) -> bool:
        """True when ``column`` is (part of) the primary key of this table."""
        return column in self.primary_key

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def take(self, indices: np.ndarray) -> "Table":
        """Gather rows by position."""
        return Table(
            name=self.name,
            columns=tuple(c.take(indices) for c in self.columns),
            primary_key=self.primary_key,
            foreign_keys=self.foreign_keys,
        )

    def filter(self, mask: np.ndarray) -> "Table":
        """Keep rows where ``mask`` is True."""
        return Table(
            name=self.name,
            columns=tuple(c.filter(mask) for c in self.columns),
            primary_key=self.primary_key,
            foreign_keys=self.foreign_keys,
        )

    def select(self, names: Sequence[str]) -> "Table":
        """Project onto a subset of columns, preserving the given order."""
        return Table(
            name=self.name,
            columns=tuple(self.column(n) for n in names),
            primary_key=tuple(k for k in self.primary_key if k in names),
            foreign_keys=tuple(fk for fk in self.foreign_keys if fk.column in names),
        )

    def rename(self, name: str) -> "Table":
        """Return the same table under a new name."""
        return Table(
            name=name,
            columns=self.columns,
            primary_key=self.primary_key,
            foreign_keys=self.foreign_keys,
        )

    def head(self, n: int = 5) -> "Table":
        """Return the first ``n`` rows (useful in examples and docs)."""
        return self.take(np.arange(min(n, self.num_rows)))

    def to_dict(self) -> dict[str, list[Any]]:
        """Return the table as a plain dict of decoded Python lists."""
        return {c.name: c.to_list() for c in self.columns}

    def memory_bytes(self) -> int:
        """Approximate in-memory footprint of the table's column data."""
        return int(sum(c.data.nbytes for c in self.columns))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Table({self.name!r}, rows={self.num_rows}, cols={list(self.column_names)})"
