"""Per-block min/max zone maps over physical column data.

A :class:`ZoneMap` partitions a column's physical ``int64`` array into
fixed-size blocks and records, per block, the minimum, maximum and null
count.  Base-table filters consult the map before touching rows: a block
whose ``[min, max]`` interval provably cannot satisfy a predicate is
skipped wholesale, and the skip is *exact* — a block is only skipped when
no row in it can match, so the resulting mask is bit-identical to a full
scan.

Zone maps live entirely in the physical domain.  For dictionary-encoded
string columns the physical values are dictionary codes, so predicates
must first be translated to code space (see :mod:`repro.expr.codespace`);
the map then supports two pruning shapes:

* **range pruning** (:meth:`survivors_range`) for predicates equivalent to
  ``lo <= value <= hi`` in the physical domain;
* **domain pruning** (:meth:`survivors_domain`) for predicates given as a
  boolean lookup table over a dense code domain (LIKE over a dictionary,
  IN-lists, unsorted dictionaries): a block survives iff the table has at
  least one True entry inside ``[min, max]``, answered in O(1) per block
  from a prefix sum.

The engine stores no NULLs today, so ``null_counts`` is all zeros; it is
kept in the layout so the on-disk format planned in ROADMAP item 3 does
not need a schema change.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Rows per zone-map block.  Small enough that selective predicates on
#: clustered data skip most of a million-row column, large enough that the
#: per-block metadata (24 bytes) is negligible against 8-byte rows.
DEFAULT_BLOCK_ROWS = 4096


@dataclass(frozen=True)
class ZoneMap:
    """Per-block (min, max, null count) metadata over one physical array."""

    block_rows: int
    num_rows: int
    mins: np.ndarray
    maxs: np.ndarray
    null_counts: np.ndarray

    @classmethod
    def build(cls, data: np.ndarray, block_rows: int = DEFAULT_BLOCK_ROWS) -> "ZoneMap":
        """Build a zone map over a one-dimensional integer array."""
        n = int(data.shape[0])
        if n == 0:
            empty = np.empty(0, dtype=np.int64)
            return cls(block_rows=block_rows, num_rows=0, mins=empty, maxs=empty, null_counts=empty)
        starts = np.arange(0, n, block_rows, dtype=np.int64)
        mins = np.minimum.reduceat(data, starts).astype(np.int64, copy=False)
        maxs = np.maximum.reduceat(data, starts).astype(np.int64, copy=False)
        nulls = np.zeros(starts.shape[0], dtype=np.int64)
        return cls(block_rows=block_rows, num_rows=n, mins=mins, maxs=maxs, null_counts=nulls)

    @property
    def num_blocks(self) -> int:
        """Number of blocks covered by this map."""
        return int(self.mins.shape[0])

    @property
    def nbytes(self) -> int:
        """Metadata bytes held by the map."""
        return int(self.mins.nbytes + self.maxs.nbytes + self.null_counts.nbytes)

    def block_lengths(self) -> np.ndarray:
        """Rows per block (every block is full except possibly the last)."""
        if self.num_blocks == 0:
            return np.empty(0, dtype=np.int64)
        lengths = np.full(self.num_blocks, self.block_rows, dtype=np.int64)
        remainder = self.num_rows - (self.num_blocks - 1) * self.block_rows
        lengths[-1] = remainder
        return lengths

    # ------------------------------------------------------------------
    # Pruning
    # ------------------------------------------------------------------
    def survivors_range(self, lo: int, hi: int) -> np.ndarray:
        """Blocks that may contain a value in the inclusive ``[lo, hi]`` range."""
        return (self.maxs >= lo) & (self.mins <= hi)

    def survivors_domain(self, domain_mask: np.ndarray) -> np.ndarray:
        """Blocks that may contain a code whose ``domain_mask`` entry is True.

        ``domain_mask`` is a boolean lookup table over the dense code domain
        ``[0, len(domain_mask))``; every stored value must fall inside it.
        """
        cumulative = np.concatenate(
            [np.zeros(1, dtype=np.int64), np.cumsum(domain_mask, dtype=np.int64)]
        )
        return cumulative[self.maxs + 1] > cumulative[self.mins]

    def survivors_not_value(self, value: int) -> np.ndarray:
        """Blocks that may contain a value different from ``value``."""
        return ~((self.mins == value) & (self.maxs == value))

    def candidate_rows(self, survivors: np.ndarray) -> np.ndarray:
        """Row positions covered by the surviving blocks, in ascending order.

        Runs in O(selected rows), not O(total rows): a grouped-arange
        cumsum over the surviving blocks only, so highly selective prunes
        never expand a per-row mask across the whole column.
        """
        if survivors.all():
            return np.arange(self.num_rows, dtype=np.int64)
        blocks = np.flatnonzero(survivors)
        if blocks.size == 0:
            return np.empty(0, dtype=np.int64)
        lengths = self.block_lengths()[blocks]
        starts = blocks.astype(np.int64) * self.block_rows
        steps = np.ones(int(lengths.sum()), dtype=np.int64)
        steps[0] = starts[0]
        if blocks.size > 1:
            boundaries = np.cumsum(lengths[:-1])
            steps[boundaries] = starts[1:] - (starts[:-1] + lengths[:-1] - 1)
        return np.cumsum(steps)

    def expand_block_mask(self, survivors: np.ndarray) -> np.ndarray:
        """A per-row boolean mask that is True inside surviving blocks."""
        return np.repeat(survivors, self.block_lengths())


@dataclass(frozen=True)
class BlockSelection:
    """The outcome of zone-map pruning for one predicate over one table.

    ``survivors[b]`` is True when block ``b`` may contain matching rows.
    Rows outside surviving blocks are *proven* non-matching, so consumers
    (the fused filter kernel, the code-space evaluator) may skip them
    without changing the resulting mask.
    """

    zone_map: ZoneMap
    survivors: np.ndarray

    @property
    def num_blocks(self) -> int:
        """Total blocks covered."""
        return self.zone_map.num_blocks

    @property
    def blocks_skipped(self) -> int:
        """Blocks proven empty of matches."""
        return self.num_blocks - int(np.count_nonzero(self.survivors))

    @property
    def rows_selected(self) -> int:
        """Rows inside surviving blocks."""
        if self.num_blocks == 0:
            return 0
        return int(self.zone_map.block_lengths()[self.survivors].sum())

    @property
    def rows_skipped(self) -> int:
        """Rows inside skipped blocks (never evaluated)."""
        return self.zone_map.num_rows - self.rows_selected

    def candidate_rows(self) -> np.ndarray:
        """Row positions of the surviving blocks, ascending."""
        return self.zone_map.candidate_rows(self.survivors)
