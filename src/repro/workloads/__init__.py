"""Benchmark workloads: TPC-H, JOB (IMDB), TPC-DS, DSB, and synthetic instances.

``repro.workloads.sqlfiles`` (imported lazily to keep the engine import
acyclic) exposes the checked-in ``.sql`` renditions of the synthetic, TPC-H,
and JOB query sets plus their loader/execution harness.
"""

from repro.workloads import dsb, job, synthetic, tpcds, tpch
from repro.workloads.generator import WorkloadScale

__all__ = ["WorkloadScale", "dsb", "job", "sqlfiles", "synthetic", "tpcds", "tpch"]


def __getattr__(name):
    # ``sqlfiles`` imports the Database façade, which imports the workload
    # modules above through the bench harness chain in some paths; resolving
    # it on first attribute access keeps package import order simple.
    if name == "sqlfiles":
        import importlib

        return importlib.import_module("repro.workloads.sqlfiles")
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
