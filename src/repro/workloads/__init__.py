"""Benchmark workloads: TPC-H, JOB (IMDB), TPC-DS, DSB, and synthetic instances."""

from repro.workloads import dsb, job, synthetic, tpcds, tpch
from repro.workloads.generator import WorkloadScale

__all__ = ["WorkloadScale", "dsb", "job", "synthetic", "tpcds", "tpch"]
