"""DSB workload: the skewed decision-support benchmark built on TPC-DS.

DSB (Ding et al., VLDB 2021) keeps the TPC-DS schema but regenerates the
data with skewed value distributions and adds query templates with harder
predicates, specifically to stress cardinality estimation.  The paper uses
it as a fourth benchmark in its speedup tables (Table 3 / Figure 20) and in
the appendix robustness plots.

The reproduction models DSB as the TPC-DS schema loaded with Zipf-skewed
foreign keys (``skew=0.8``) plus the same query join structures — the join
graphs are identical between TPC-DS and DSB; only the data distribution
changes, which is exactly the aspect the skewed generator reproduces.
"""

from __future__ import annotations

from typing import Dict

from repro.engine.database import Database
from repro.query import QuerySpec
from repro.workloads import tpcds

#: Default Zipf exponent used for DSB's skewed foreign keys.
DEFAULT_SKEW = 0.8


def load(
    db: Database,
    scale: float = 1.0,
    seed: int = 23,
    skew: float = DEFAULT_SKEW,
    replace: bool = False,
) -> Dict[str, int]:
    """Generate and register the DSB (skewed TPC-DS) tables."""
    return tpcds.load(db, scale=scale, seed=seed, skew=skew, replace=replace)


def query(number: int) -> QuerySpec:
    """Return the DSB variant of query ``number`` (same join structure as TPC-DS)."""
    base = tpcds.query(number)
    return QuerySpec(
        name=base.name.replace("tpcds_", "dsb_"),
        relations=base.relations,
        joins=base.joins,
        aggregates=base.aggregates,
        post_join_predicates=base.post_join_predicates,
    )


def all_queries() -> Dict[str, QuerySpec]:
    """All DSB queries, keyed by name."""
    return {f"q{n}": query(n) for n in tpcds.query_numbers()}


def query_numbers() -> tuple[int, ...]:
    """All reproduced DSB query numbers."""
    return tpcds.query_numbers()


#: Cyclic queries (same join structures as TPC-DS).
CYCLIC_QUERIES = tpcds.CYCLIC_QUERIES
