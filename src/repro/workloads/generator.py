"""Shared synthetic-data generation utilities for the benchmark workloads.

The paper evaluates against TPC-H SF100, JOB on the real IMDB dataset,
TPC-DS SF100, and DSB SF100 — hundreds of gigabytes that are neither
available offline nor tractable for a pure-Python engine.  The workload
modules therefore generate *scaled-down synthetic* datasets that preserve
what drives join-order (non-)robustness:

* the schema and its key/foreign-key structure (which determines the join
  graph topology of every query),
* realistic fan-outs between fact and dimension tables,
* value skew where the original data is skewed (DSB; IMDB's long-tailed
  fan-outs), and
* selective dimension predicates.

All generators are deterministic given a seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.errors import WorkloadError


@dataclass(frozen=True)
class WorkloadScale:
    """Scale parameters shared by the workload generators.

    Attributes
    ----------
    scale:
        Scale factor relative to the workload's built-in base cardinalities
        (1.0 reproduces the module's "full" synthetic size, which is already
        thousands of times smaller than SF100).
    seed:
        Seed of the deterministic generator.
    """

    scale: float = 1.0
    seed: int = 42

    def rows(self, base: int, minimum: int = 1) -> int:
        """Scaled row count, never below ``minimum``."""
        return max(int(round(base * self.scale)), minimum)

    def rng(self, salt: str = "") -> np.random.Generator:
        """A NumPy generator seeded deterministically from the scale seed and a salt."""
        return np.random.default_rng(abs(hash((self.seed, salt))) % (2**32))


def primary_keys(n: int) -> np.ndarray:
    """Dense primary keys ``1..n`` (matching the TPC generators' convention)."""
    return np.arange(1, n + 1, dtype=np.int64)


def foreign_keys(
    rng: np.random.Generator,
    n: int,
    ref_size: int,
    skew: float = 0.0,
    null_fraction: float = 0.0,
) -> np.ndarray:
    """Foreign-key column referencing a table with ``ref_size`` rows.

    Parameters
    ----------
    rng:
        Random generator.
    n:
        Number of rows to produce.
    ref_size:
        Cardinality of the referenced table (keys are drawn from ``1..ref_size``).
    skew:
        0.0 = uniform; larger values produce a Zipf-like concentration on a
        few referenced keys, mimicking skewed fact tables (DSB) and IMDB's
        long-tailed relationships.
    null_fraction:
        Fraction of rows whose reference is replaced by ``-1`` (a dangling
        key that matches nothing), modelling optional relationships.
    """
    if ref_size <= 0:
        raise WorkloadError("foreign_keys requires a positive referenced-table size")
    if n <= 0:
        return np.zeros(0, dtype=np.int64)
    if skew <= 0.0:
        keys = rng.integers(1, ref_size + 1, size=n, dtype=np.int64)
    else:
        # Zipf-like: rank r gets probability proportional to 1 / r^skew.
        ranks = np.arange(1, ref_size + 1, dtype=np.float64)
        probabilities = 1.0 / np.power(ranks, skew)
        probabilities /= probabilities.sum()
        keys = rng.choice(np.arange(1, ref_size + 1, dtype=np.int64), size=n, p=probabilities)
    if null_fraction > 0.0:
        dangling = rng.random(n) < null_fraction
        keys = np.where(dangling, np.int64(-1), keys)
    return keys


def numeric_column(
    rng: np.random.Generator,
    n: int,
    low: float,
    high: float,
    integer: bool = False,
) -> np.ndarray:
    """A numeric measure column uniformly distributed in ``[low, high]``."""
    if integer:
        return rng.integers(int(low), int(high) + 1, size=n, dtype=np.int64)
    return rng.uniform(low, high, size=n)


def date_column(
    rng: np.random.Generator,
    n: int,
    start_day: int = 0,
    end_day: int = 2557,
) -> np.ndarray:
    """A date column as integer days within ``[start_day, end_day]`` (~7 years)."""
    return rng.integers(start_day, end_day + 1, size=n, dtype=np.int64)


def categorical_column(
    rng: np.random.Generator,
    n: int,
    categories: Sequence[str],
    weights: Optional[Sequence[float]] = None,
) -> list[str]:
    """A string column drawn from a fixed set of categories."""
    if not categories:
        raise WorkloadError("categorical_column requires at least one category")
    if weights is not None:
        probabilities = np.asarray(weights, dtype=np.float64)
        probabilities = probabilities / probabilities.sum()
    else:
        probabilities = None
    choices = rng.choice(len(categories), size=n, p=probabilities)
    return [categories[int(i)] for i in choices]


def names_column(prefix: str, n: int) -> list[str]:
    """Deterministic synthetic names (``prefix#000001`` ...)."""
    return [f"{prefix}#{i:06d}" for i in range(1, n + 1)]


def zipf_weights(n: int, skew: float) -> np.ndarray:
    """Normalized Zipf weights over ``n`` items (skew=0 gives a uniform vector)."""
    ranks = np.arange(1, n + 1, dtype=np.float64)
    if skew <= 0.0:
        weights = np.ones(n, dtype=np.float64)
    else:
        weights = 1.0 / np.power(ranks, skew)
    return weights / weights.sum()
