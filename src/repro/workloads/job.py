"""JOB (Join Order Benchmark) workload: synthetic IMDB schema and the 33 templates.

The Join Order Benchmark runs 113 queries (33 structural templates) over the
real IMDB snapshot.  The reproduction generates a scaled-down synthetic IMDB
with the same 21-table schema, the same key/foreign-key structure, and
long-tailed fan-outs from the ``title`` table to its satellite tables (each
movie has many keywords / info rows / cast entries, with Zipf-like skew —
exactly the shape that makes naive join orders explode on the real data).

One query per template (the ``a`` variant's join structure) is provided,
matching how the paper reports JOB results: "for JOB queries, we present one
result for each of the 33 query templates".  All templates are acyclic,
which is why the paper's Figure 6b shows no red (cyclic) query numbers for
JOB.
"""

from __future__ import annotations

from typing import Dict

from repro.engine.database import Database
from repro.errors import WorkloadError
from repro.expr import between, contains, eq, ge, gt, isin, le, lt, starts_with
from repro.query import JoinCondition, QuerySpec, RelationRef
from repro.storage.table import ForeignKey
from repro.workloads.generator import (
    WorkloadScale,
    categorical_column,
    foreign_keys,
    names_column,
    numeric_column,
    primary_keys,
)

#: Base cardinalities at ``scale=1.0`` (IMDB ratios, thousands of times smaller).
BASE_ROWS = {
    "kind_type": 7,
    "info_type": 113,
    "link_type": 18,
    "role_type": 12,
    "comp_cast_type": 4,
    "company_type": 4,
    "company_name": 600,
    "keyword": 800,
    "name": 4_000,
    "char_name": 3_000,
    "title": 2_500,
    "aka_name": 1_200,
    "aka_title": 800,
    "cast_info": 36_000,
    "complete_cast": 300,
    "movie_companies": 5_000,
    "movie_info": 15_000,
    "movie_info_idx": 4_500,
    "movie_keyword": 9_000,
    "movie_link": 600,
    "person_info": 6_000,
}

_INFO_KINDS = [
    "budget", "bottom 10 rank", "genres", "languages", "production notes",
    "rating", "release dates", "runtimes", "top 250 rank", "votes",
]
_KEYWORDS = [
    "amnesia", "character-name-in-title", "computer-animation", "dark-humor",
    "hero", "love", "marvel-cinematic-universe", "murder", "revenge",
    "based-on-novel", "sequel", "superhero", "violence", "blood", "fight",
]
_COMPANY_COUNTRIES = ["[us]", "[de]", "[gb]", "[fr]", "[jp]", "[in]"]
_LINK_KINDS = ["follows", "followed by", "remake of", "features", "references"]
_KIND_NAMES = ["movie", "tv series", "tv movie", "video movie", "tv mini series", "video game", "episode"]
_ROLE_NAMES = [
    "actor", "actress", "producer", "writer", "cinematographer", "composer",
    "costume designer", "director", "editor", "miscellaneous crew", "production designer", "guest",
]
_CCT_KINDS = ["cast", "crew", "complete", "complete+verified"]
_COMPANY_KINDS = ["distributors", "production companies", "special effects companies", "miscellaneous companies"]


def load(db: Database, scale: float = 1.0, seed: int = 7, replace: bool = False) -> Dict[str, int]:
    """Generate and register the synthetic IMDB tables used by JOB."""
    ws = WorkloadScale(scale=scale, seed=seed)
    counts = {name: ws.rows(base) for name, base in BASE_ROWS.items()}
    for small in ("kind_type", "info_type", "link_type", "role_type", "comp_cast_type", "company_type"):
        counts[small] = BASE_ROWS[small]

    def reg(name, data, pk=(), fks=()):
        db.register_dataframe(name, data, primary_key=pk, foreign_keys=fks, replace=replace)

    # --- small dictionary tables -----------------------------------------
    reg("kind_type", {"id": primary_keys(counts["kind_type"]), "kind": _KIND_NAMES[: counts["kind_type"]]}, pk=["id"])
    reg(
        "info_type",
        {
            "id": primary_keys(counts["info_type"]),
            "info": [_INFO_KINDS[i % len(_INFO_KINDS)] + (f" {i}" if i >= len(_INFO_KINDS) else "")
                     for i in range(counts["info_type"])],
        },
        pk=["id"],
    )
    reg("link_type", {"id": primary_keys(counts["link_type"]),
                      "link": [_LINK_KINDS[i % len(_LINK_KINDS)] + (f" {i}" if i >= len(_LINK_KINDS) else "")
                               for i in range(counts["link_type"])]}, pk=["id"])
    reg("role_type", {"id": primary_keys(counts["role_type"]), "role": _ROLE_NAMES[: counts["role_type"]]}, pk=["id"])
    reg("comp_cast_type", {"id": primary_keys(counts["comp_cast_type"]), "kind": _CCT_KINDS[: counts["comp_cast_type"]]}, pk=["id"])
    reg("company_type", {"id": primary_keys(counts["company_type"]), "kind": _COMPANY_KINDS[: counts["company_type"]]}, pk=["id"])

    # --- entity tables -----------------------------------------------------
    rng = ws.rng("company_name")
    reg(
        "company_name",
        {
            "id": primary_keys(counts["company_name"]),
            "name": names_column("Studio", counts["company_name"]),
            "country_code": categorical_column(rng, counts["company_name"], _COMPANY_COUNTRIES, [0.45, 0.15, 0.15, 0.1, 0.1, 0.05]),
        },
        pk=["id"],
    )
    rng = ws.rng("keyword")
    reg(
        "keyword",
        {
            "id": primary_keys(counts["keyword"]),
            "keyword": [_KEYWORDS[i % len(_KEYWORDS)] + (f"-{i}" if i >= len(_KEYWORDS) else "")
                        for i in range(counts["keyword"])],
        },
        pk=["id"],
    )
    rng = ws.rng("name")
    reg(
        "name",
        {
            "id": primary_keys(counts["name"]),
            "name": names_column("Person", counts["name"]),
            "gender": categorical_column(rng, counts["name"], ["m", "f", ""], [0.6, 0.35, 0.05]),
        },
        pk=["id"],
    )
    reg("char_name", {"id": primary_keys(counts["char_name"]), "name": names_column("Character", counts["char_name"])}, pk=["id"])

    rng = ws.rng("title")
    reg(
        "title",
        {
            "id": primary_keys(counts["title"]),
            "title": names_column("Movie", counts["title"]),
            "kind_id": foreign_keys(rng, counts["title"], counts["kind_type"]),
            "production_year": numeric_column(rng, counts["title"], 1930, 2015, integer=True),
            "episode_nr": numeric_column(rng, counts["title"], 0, 200, integer=True),
        },
        pk=["id"],
        fks=[ForeignKey("kind_id", "kind_type", "id")],
    )

    rng = ws.rng("aka_name")
    reg(
        "aka_name",
        {
            "id": primary_keys(counts["aka_name"]),
            "person_id": foreign_keys(rng, counts["aka_name"], counts["name"]),
            "name": names_column("Alias", counts["aka_name"]),
        },
        pk=["id"],
        fks=[ForeignKey("person_id", "name", "id")],
    )
    rng = ws.rng("aka_title")
    reg(
        "aka_title",
        {
            "id": primary_keys(counts["aka_title"]),
            "movie_id": foreign_keys(rng, counts["aka_title"], counts["title"], skew=0.5),
            "title": names_column("AltTitle", counts["aka_title"]),
        },
        pk=["id"],
        fks=[ForeignKey("movie_id", "title", "id")],
    )

    # --- relationship (fact) tables ---------------------------------------
    rng = ws.rng("cast_info")
    reg(
        "cast_info",
        {
            "id": primary_keys(counts["cast_info"]),
            "person_id": foreign_keys(rng, counts["cast_info"], counts["name"], skew=0.6),
            "movie_id": foreign_keys(rng, counts["cast_info"], counts["title"], skew=0.4),
            "person_role_id": foreign_keys(rng, counts["cast_info"], counts["char_name"], null_fraction=0.3),
            "role_id": foreign_keys(rng, counts["cast_info"], counts["role_type"]),
            "note_is_producer": rng.integers(0, 2, counts["cast_info"]),
        },
        pk=["id"],
        fks=[
            ForeignKey("person_id", "name", "id"),
            ForeignKey("movie_id", "title", "id"),
            ForeignKey("person_role_id", "char_name", "id"),
            ForeignKey("role_id", "role_type", "id"),
        ],
    )
    rng = ws.rng("complete_cast")
    reg(
        "complete_cast",
        {
            "id": primary_keys(counts["complete_cast"]),
            "movie_id": foreign_keys(rng, counts["complete_cast"], counts["title"]),
            "subject_id": foreign_keys(rng, counts["complete_cast"], counts["comp_cast_type"]),
            "status_id": foreign_keys(rng, counts["complete_cast"], counts["comp_cast_type"]),
        },
        pk=["id"],
        fks=[
            ForeignKey("movie_id", "title", "id"),
            ForeignKey("subject_id", "comp_cast_type", "id"),
            ForeignKey("status_id", "comp_cast_type", "id"),
        ],
    )
    rng = ws.rng("movie_companies")
    reg(
        "movie_companies",
        {
            "id": primary_keys(counts["movie_companies"]),
            "movie_id": foreign_keys(rng, counts["movie_companies"], counts["title"], skew=0.3),
            "company_id": foreign_keys(rng, counts["movie_companies"], counts["company_name"], skew=0.8),
            "company_type_id": foreign_keys(rng, counts["movie_companies"], counts["company_type"]),
        },
        pk=["id"],
        fks=[
            ForeignKey("movie_id", "title", "id"),
            ForeignKey("company_id", "company_name", "id"),
            ForeignKey("company_type_id", "company_type", "id"),
        ],
    )
    rng = ws.rng("movie_info")
    reg(
        "movie_info",
        {
            "id": primary_keys(counts["movie_info"]),
            "movie_id": foreign_keys(rng, counts["movie_info"], counts["title"], skew=0.3),
            "info_type_id": foreign_keys(rng, counts["movie_info"], counts["info_type"], skew=0.7),
            "info_bucket": rng.integers(0, 100, counts["movie_info"]),
        },
        pk=["id"],
        fks=[
            ForeignKey("movie_id", "title", "id"),
            ForeignKey("info_type_id", "info_type", "id"),
        ],
    )
    rng = ws.rng("movie_info_idx")
    reg(
        "movie_info_idx",
        {
            "id": primary_keys(counts["movie_info_idx"]),
            "movie_id": foreign_keys(rng, counts["movie_info_idx"], counts["title"], skew=0.2),
            "info_type_id": foreign_keys(rng, counts["movie_info_idx"], counts["info_type"], skew=0.5),
            "info_rating": numeric_column(rng, counts["movie_info_idx"], 1.0, 10.0),
        },
        pk=["id"],
        fks=[
            ForeignKey("movie_id", "title", "id"),
            ForeignKey("info_type_id", "info_type", "id"),
        ],
    )
    rng = ws.rng("movie_keyword")
    reg(
        "movie_keyword",
        {
            "id": primary_keys(counts["movie_keyword"]),
            "movie_id": foreign_keys(rng, counts["movie_keyword"], counts["title"], skew=0.4),
            "keyword_id": foreign_keys(rng, counts["movie_keyword"], counts["keyword"], skew=0.9),
        },
        pk=["id"],
        fks=[
            ForeignKey("movie_id", "title", "id"),
            ForeignKey("keyword_id", "keyword", "id"),
        ],
    )
    rng = ws.rng("movie_link")
    reg(
        "movie_link",
        {
            "id": primary_keys(counts["movie_link"]),
            "movie_id": foreign_keys(rng, counts["movie_link"], counts["title"]),
            "linked_movie_id": foreign_keys(rng, counts["movie_link"], counts["title"]),
            "link_type_id": foreign_keys(rng, counts["movie_link"], counts["link_type"]),
        },
        pk=["id"],
        fks=[
            ForeignKey("movie_id", "title", "id"),
            ForeignKey("linked_movie_id", "title", "id"),
            ForeignKey("link_type_id", "link_type", "id"),
        ],
    )
    rng = ws.rng("person_info")
    reg(
        "person_info",
        {
            "id": primary_keys(counts["person_info"]),
            "person_id": foreign_keys(rng, counts["person_info"], counts["name"], skew=0.5),
            "info_type_id": foreign_keys(rng, counts["person_info"], counts["info_type"]),
        },
        pk=["id"],
        fks=[
            ForeignKey("person_id", "name", "id"),
            ForeignKey("info_type_id", "info_type", "id"),
        ],
    )
    return counts


# ---------------------------------------------------------------------------
# Query templates
# ---------------------------------------------------------------------------
def _rel(alias: str, table: str, filt=None) -> RelationRef:
    return RelationRef(alias, table, filt)


def _join(a: str, ac: str, b: str, bc: str) -> JoinCondition:
    return JoinCondition(a, ac, b, bc)


def _template(number: int) -> QuerySpec:
    """Build the (simplified) join structure of JOB template ``number``."""
    t = _rel("t", "title", gt("production_year", 1990))
    mk = _rel("mk", "movie_keyword")
    k = _rel("k", "keyword", eq("keyword", "character-name-in-title"))
    mi = _rel("mi", "movie_info")
    mi_idx = _rel("mi_idx", "movie_info_idx", gt("info_rating", 6.0))
    it = _rel("it", "info_type", eq("info", "rating"))
    it2 = _rel("it2", "info_type", eq("info", "votes"))
    mc = _rel("mc", "movie_companies")
    cn = _rel("cn", "company_name", eq("country_code", "[us]"))
    ct = _rel("ct", "company_type", eq("kind", "production companies"))
    ci = _rel("ci", "cast_info")
    n = _rel("n", "name", eq("gender", "f"))
    an = _rel("an", "aka_name")
    rt = _rel("rt", "role_type", eq("role", "actress"))
    chn = _rel("chn", "char_name")
    kt = _rel("kt", "kind_type", eq("kind", "movie"))
    ml = _rel("ml", "movie_link")
    lt_ = _rel("lt", "link_type", eq("link", "follows"))
    cc = _rel("cc", "complete_cast")
    cct = _rel("cct", "comp_cast_type", eq("kind", "cast"))
    pi = _rel("pi", "person_info")
    at = _rel("at", "aka_title")

    j_mk_t = _join("mk", "movie_id", "t", "id")
    j_mk_k = _join("mk", "keyword_id", "k", "id")
    j_mi_t = _join("mi", "movie_id", "t", "id")
    j_mi_it = _join("mi", "info_type_id", "it", "id")
    j_mix_t = _join("mi_idx", "movie_id", "t", "id")
    j_mix_it = _join("mi_idx", "info_type_id", "it", "id")
    j_mix_it2 = _join("mi_idx", "info_type_id", "it2", "id")
    j_mc_t = _join("mc", "movie_id", "t", "id")
    j_mc_cn = _join("mc", "company_id", "cn", "id")
    j_mc_ct = _join("mc", "company_type_id", "ct", "id")
    j_ci_t = _join("ci", "movie_id", "t", "id")
    j_ci_n = _join("ci", "person_id", "n", "id")
    j_ci_rt = _join("ci", "role_id", "rt", "id")
    j_ci_chn = _join("ci", "person_role_id", "chn", "id")
    j_an_n = _join("an", "person_id", "n", "id")
    j_t_kt = _join("t", "kind_id", "kt", "id")
    j_ml_t = _join("ml", "movie_id", "t", "id")
    j_ml_lt = _join("ml", "link_type_id", "lt", "id")
    j_cc_t = _join("cc", "movie_id", "t", "id")
    j_cc_cct = _join("cc", "subject_id", "cct", "id")
    j_pi_n = _join("pi", "person_id", "n", "id")
    j_at_t = _join("at", "movie_id", "t", "id")

    templates: Dict[int, tuple] = {
        1: ((ct, it, mc, mi_idx, t), (j_mc_ct, j_mc_t, j_mix_t, j_mix_it)),
        2: ((cn, k, mc, mk, t), (j_mc_cn, j_mc_t, j_mk_t, j_mk_k)),
        3: ((k, mi, mk, t), (j_mk_k, j_mk_t, j_mi_t)),
        4: ((it, k, mi_idx, mk, t), (j_mix_it, j_mix_t, j_mk_t, j_mk_k)),
        5: ((ct, it, mc, mi, t), (j_mc_ct, j_mc_t, j_mi_t, j_mi_it)),
        6: ((ci, k, mk, n, t), (j_ci_t, j_ci_n, j_mk_t, j_mk_k)),
        7: ((an, ci, it, lt_, ml, n, pi, t),
            (j_an_n, j_ci_n, j_ci_t, j_ml_t, j_ml_lt, j_pi_n, _join("pi", "info_type_id", "it", "id"))),
        8: ((an, ci, cn, mc, n, rt, t), (j_an_n, j_ci_n, j_ci_t, j_ci_rt, j_mc_t, j_mc_cn)),
        9: ((an, chn, ci, cn, mc, n, rt, t),
            (j_an_n, j_ci_chn, j_ci_n, j_ci_t, j_ci_rt, j_mc_t, j_mc_cn)),
        10: ((chn, ci, cn, ct, mc, rt, t), (j_ci_chn, j_ci_t, j_ci_rt, j_mc_t, j_mc_cn, j_mc_ct)),
        11: ((cn, ct, k, lt_, mc, mk, ml, t),
             (j_mc_cn, j_mc_ct, j_mc_t, j_mk_t, j_mk_k, j_ml_t, j_ml_lt)),
        12: ((cn, ct, it, it2, mc, mi, mi_idx, t),
             (j_mc_cn, j_mc_ct, j_mc_t, j_mi_t, j_mi_it, j_mix_t, j_mix_it2)),
        13: ((cn, ct, it, it2, kt, mc, mi, mi_idx, t),
             (j_mc_cn, j_mc_ct, j_mc_t, j_mi_t, j_mi_it, j_mix_t, j_mix_it2, j_t_kt)),
        14: ((it, it2, k, kt, mi, mi_idx, mk, t),
             (j_mi_it, j_mi_t, j_mix_it2, j_mix_t, j_mk_t, j_mk_k, j_t_kt)),
        15: ((at, cn, it, k, mc, mi, mk, t),
             (j_at_t, j_mc_cn, j_mc_t, j_mi_t, j_mi_it, j_mk_t, j_mk_k)),
        16: ((an, ci, cn, k, mc, mk, n, t),
             (j_an_n, j_ci_n, j_ci_t, j_mc_cn, j_mc_t, j_mk_t, j_mk_k)),
        17: ((ci, cn, k, mc, mk, n, t), (j_ci_n, j_ci_t, j_mc_cn, j_mc_t, j_mk_t, j_mk_k)),
        18: ((ci, it, it2, mi, mi_idx, n, t),
             (j_ci_n, j_ci_t, j_mi_t, j_mi_it, j_mix_t, j_mix_it2)),
        19: ((an, chn, ci, cn, it, mc, mi, n, rt, t),
             (j_an_n, j_ci_chn, j_ci_n, j_ci_t, j_ci_rt, j_mc_cn, j_mc_t, j_mi_t, j_mi_it)),
        20: ((cc, cct, chn, ci, k, kt, mk, n, t),
             (j_cc_t, j_cc_cct, j_ci_chn, j_ci_n, j_ci_t, j_mk_t, j_mk_k, j_t_kt)),
        21: ((cn, ct, k, lt_, mc, mi, mk, ml, t),
             (j_mc_cn, j_mc_ct, j_mc_t, j_mi_t, j_mk_t, j_mk_k, j_ml_t, j_ml_lt)),
        22: ((cn, ct, it, it2, k, kt, mc, mi, mi_idx, mk, t),
             (j_mc_cn, j_mc_ct, j_mc_t, j_mi_t, j_mi_it, j_mix_t, j_mix_it2, j_mk_t, j_mk_k, j_t_kt)),
        23: ((cc, cct, cn, ct, it, kt, mc, mi, t),
             (j_cc_t, j_cc_cct, j_mc_cn, j_mc_ct, j_mc_t, j_mi_t, j_mi_it, j_t_kt)),
        24: ((an, chn, ci, it, k, mi, mk, n, rt, t),
             (j_an_n, j_ci_chn, j_ci_n, j_ci_t, j_ci_rt, j_mi_t, j_mi_it, j_mk_t, j_mk_k)),
        25: ((ci, it, it2, k, mi, mi_idx, mk, n, t),
             (j_ci_n, j_ci_t, j_mi_t, j_mi_it, j_mix_t, j_mix_it2, j_mk_t, j_mk_k)),
        26: ((cc, cct, chn, ci, it, k, kt, mi_idx, mk, n, t),
             (j_cc_t, j_cc_cct, j_ci_chn, j_ci_n, j_ci_t, j_mix_t, j_mix_it, j_mk_t, j_mk_k, j_t_kt)),
        27: ((cc, cct, cn, ct, k, lt_, mc, mk, ml, t),
             (j_cc_t, j_cc_cct, j_mc_cn, j_mc_ct, j_mc_t, j_mk_t, j_mk_k, j_ml_t, j_ml_lt)),
        28: ((cc, cct, cn, ct, it, it2, k, kt, mc, mi, mi_idx, mk, t),
             (j_cc_t, j_cc_cct, j_mc_cn, j_mc_ct, j_mc_t, j_mi_t, j_mi_it, j_mix_t, j_mix_it2,
              j_mk_t, j_mk_k, j_t_kt)),
        29: ((an, cc, cct, chn, ci, cn, it, it2, k, kt, mc, mi, mk, n, rt, pi, t),
             (j_an_n, j_cc_t, j_cc_cct, j_ci_chn, j_ci_n, j_ci_t, j_ci_rt, j_mc_cn, j_mc_t,
              j_mi_t, j_mi_it, j_mk_t, j_mk_k, j_t_kt, j_pi_n, _join("pi", "info_type_id", "it2", "id"))),
        30: ((cc, cct, ci, it, it2, k, mi, mi_idx, mk, n, t),
             (j_cc_t, j_cc_cct, j_ci_n, j_ci_t, j_mi_t, j_mi_it, j_mix_t, j_mix_it2, j_mk_t, j_mk_k)),
        31: ((ci, cn, it, it2, k, mc, mi, mi_idx, mk, n, t),
             (j_ci_n, j_ci_t, j_mc_cn, j_mc_t, j_mi_t, j_mi_it, j_mix_t, j_mix_it2, j_mk_t, j_mk_k)),
        32: ((k, lt_, mk, ml, t), (j_mk_k, j_mk_t, j_ml_t, j_ml_lt)),
        33: ((cn, it, kt, lt_, mc, mi_idx, ml, t),
             (j_mc_cn, j_mc_t, j_mix_t, j_mix_it, j_ml_t, j_ml_lt, j_t_kt)),
    }
    if number not in templates:
        raise WorkloadError(f"JOB template {number} does not exist (valid: 1..33)")
    relations, joins = templates[number]
    return QuerySpec(name=f"job_{number}a", relations=tuple(relations), joins=tuple(joins))


def query(number: int) -> QuerySpec:
    """Return the QuerySpec for JOB template ``number`` (1..33)."""
    return _template(number)


def all_queries() -> Dict[str, QuerySpec]:
    """All 33 JOB template queries, keyed by name."""
    return {f"t{n}": _template(n) for n in range(1, 34)}


def template_numbers() -> tuple[int, ...]:
    """All template numbers."""
    return tuple(range(1, 34))


#: Templates highlighted in Figure 8 (original PT's Small2Large under-reduces).
FIGURE8_TEMPLATES = (32,)
