-- name: job_10a
SELECT COUNT(*) AS count_star
FROM char_name AS chn,
     cast_info AS ci,
     company_name AS cn,
     company_type AS ct,
     movie_companies AS mc,
     role_type AS rt,
     title AS t
WHERE ci.person_role_id = chn.id
  AND ci.movie_id = t.id
  AND ci.role_id = rt.id
  AND mc.movie_id = t.id
  AND mc.company_id = cn.id
  AND mc.company_type_id = ct.id
  AND cn.country_code = '[us]'
  AND ct.kind = 'production companies'
  AND rt.role = 'actress'
  AND t.production_year > 1990;
