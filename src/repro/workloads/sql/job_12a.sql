-- name: job_12a
SELECT COUNT(*) AS count_star
FROM company_name AS cn,
     company_type AS ct,
     info_type AS it,
     info_type AS it2,
     movie_companies AS mc,
     movie_info AS mi,
     movie_info_idx AS mi_idx,
     title AS t
WHERE mc.company_id = cn.id
  AND mc.company_type_id = ct.id
  AND mc.movie_id = t.id
  AND mi.movie_id = t.id
  AND mi.info_type_id = it.id
  AND mi_idx.movie_id = t.id
  AND mi_idx.info_type_id = it2.id
  AND cn.country_code = '[us]'
  AND ct.kind = 'production companies'
  AND it.info = 'rating'
  AND it2.info = 'votes'
  AND mi_idx.info_rating > 6.0
  AND t.production_year > 1990;
