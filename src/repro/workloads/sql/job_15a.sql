-- name: job_15a
SELECT COUNT(*) AS count_star
FROM aka_title AS at,
     company_name AS cn,
     info_type AS it,
     keyword AS k,
     movie_companies AS mc,
     movie_info AS mi,
     movie_keyword AS mk,
     title AS t
WHERE at.movie_id = t.id
  AND mc.company_id = cn.id
  AND mc.movie_id = t.id
  AND mi.movie_id = t.id
  AND mi.info_type_id = it.id
  AND mk.movie_id = t.id
  AND mk.keyword_id = k.id
  AND cn.country_code = '[us]'
  AND it.info = 'rating'
  AND k.keyword = 'character-name-in-title'
  AND t.production_year > 1990;
