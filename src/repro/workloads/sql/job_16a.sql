-- name: job_16a
SELECT COUNT(*) AS count_star
FROM aka_name AS an,
     cast_info AS ci,
     company_name AS cn,
     keyword AS k,
     movie_companies AS mc,
     movie_keyword AS mk,
     name AS n,
     title AS t
WHERE an.person_id = n.id
  AND ci.person_id = n.id
  AND ci.movie_id = t.id
  AND mc.company_id = cn.id
  AND mc.movie_id = t.id
  AND mk.movie_id = t.id
  AND mk.keyword_id = k.id
  AND cn.country_code = '[us]'
  AND k.keyword = 'character-name-in-title'
  AND n.gender = 'f'
  AND t.production_year > 1990;
