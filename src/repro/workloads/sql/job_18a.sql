-- name: job_18a
SELECT COUNT(*) AS count_star
FROM cast_info AS ci,
     info_type AS it,
     info_type AS it2,
     movie_info AS mi,
     movie_info_idx AS mi_idx,
     name AS n,
     title AS t
WHERE ci.person_id = n.id
  AND ci.movie_id = t.id
  AND mi.movie_id = t.id
  AND mi.info_type_id = it.id
  AND mi_idx.movie_id = t.id
  AND mi_idx.info_type_id = it2.id
  AND it.info = 'rating'
  AND it2.info = 'votes'
  AND mi_idx.info_rating > 6.0
  AND n.gender = 'f'
  AND t.production_year > 1990;
