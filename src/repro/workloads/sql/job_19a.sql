-- name: job_19a
SELECT COUNT(*) AS count_star
FROM aka_name AS an,
     char_name AS chn,
     cast_info AS ci,
     company_name AS cn,
     info_type AS it,
     movie_companies AS mc,
     movie_info AS mi,
     name AS n,
     role_type AS rt,
     title AS t
WHERE an.person_id = n.id
  AND ci.person_role_id = chn.id
  AND ci.person_id = n.id
  AND ci.movie_id = t.id
  AND ci.role_id = rt.id
  AND mc.company_id = cn.id
  AND mc.movie_id = t.id
  AND mi.movie_id = t.id
  AND mi.info_type_id = it.id
  AND cn.country_code = '[us]'
  AND it.info = 'rating'
  AND n.gender = 'f'
  AND rt.role = 'actress'
  AND t.production_year > 1990;
