-- name: job_1a
SELECT COUNT(*) AS count_star
FROM company_type AS ct,
     info_type AS it,
     movie_companies AS mc,
     movie_info_idx AS mi_idx,
     title AS t
WHERE mc.company_type_id = ct.id
  AND mc.movie_id = t.id
  AND mi_idx.movie_id = t.id
  AND mi_idx.info_type_id = it.id
  AND ct.kind = 'production companies'
  AND it.info = 'rating'
  AND mi_idx.info_rating > 6.0
  AND t.production_year > 1990;
