-- name: job_20a
SELECT COUNT(*) AS count_star
FROM complete_cast AS cc,
     comp_cast_type AS cct,
     char_name AS chn,
     cast_info AS ci,
     keyword AS k,
     kind_type AS kt,
     movie_keyword AS mk,
     name AS n,
     title AS t
WHERE cc.movie_id = t.id
  AND cc.subject_id = cct.id
  AND ci.person_role_id = chn.id
  AND ci.person_id = n.id
  AND ci.movie_id = t.id
  AND mk.movie_id = t.id
  AND mk.keyword_id = k.id
  AND t.kind_id = kt.id
  AND cct.kind = 'cast'
  AND k.keyword = 'character-name-in-title'
  AND kt.kind = 'movie'
  AND n.gender = 'f'
  AND t.production_year > 1990;
