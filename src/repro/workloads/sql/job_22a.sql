-- name: job_22a
SELECT COUNT(*) AS count_star
FROM company_name AS cn,
     company_type AS ct,
     info_type AS it,
     info_type AS it2,
     keyword AS k,
     kind_type AS kt,
     movie_companies AS mc,
     movie_info AS mi,
     movie_info_idx AS mi_idx,
     movie_keyword AS mk,
     title AS t
WHERE mc.company_id = cn.id
  AND mc.company_type_id = ct.id
  AND mc.movie_id = t.id
  AND mi.movie_id = t.id
  AND mi.info_type_id = it.id
  AND mi_idx.movie_id = t.id
  AND mi_idx.info_type_id = it2.id
  AND mk.movie_id = t.id
  AND mk.keyword_id = k.id
  AND t.kind_id = kt.id
  AND cn.country_code = '[us]'
  AND ct.kind = 'production companies'
  AND it.info = 'rating'
  AND it2.info = 'votes'
  AND k.keyword = 'character-name-in-title'
  AND kt.kind = 'movie'
  AND mi_idx.info_rating > 6.0
  AND t.production_year > 1990;
