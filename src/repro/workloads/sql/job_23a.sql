-- name: job_23a
SELECT COUNT(*) AS count_star
FROM complete_cast AS cc,
     comp_cast_type AS cct,
     company_name AS cn,
     company_type AS ct,
     info_type AS it,
     kind_type AS kt,
     movie_companies AS mc,
     movie_info AS mi,
     title AS t
WHERE cc.movie_id = t.id
  AND cc.subject_id = cct.id
  AND mc.company_id = cn.id
  AND mc.company_type_id = ct.id
  AND mc.movie_id = t.id
  AND mi.movie_id = t.id
  AND mi.info_type_id = it.id
  AND t.kind_id = kt.id
  AND cct.kind = 'cast'
  AND cn.country_code = '[us]'
  AND ct.kind = 'production companies'
  AND it.info = 'rating'
  AND kt.kind = 'movie'
  AND t.production_year > 1990;
