-- name: job_24a
SELECT COUNT(*) AS count_star
FROM aka_name AS an,
     char_name AS chn,
     cast_info AS ci,
     info_type AS it,
     keyword AS k,
     movie_info AS mi,
     movie_keyword AS mk,
     name AS n,
     role_type AS rt,
     title AS t
WHERE an.person_id = n.id
  AND ci.person_role_id = chn.id
  AND ci.person_id = n.id
  AND ci.movie_id = t.id
  AND ci.role_id = rt.id
  AND mi.movie_id = t.id
  AND mi.info_type_id = it.id
  AND mk.movie_id = t.id
  AND mk.keyword_id = k.id
  AND it.info = 'rating'
  AND k.keyword = 'character-name-in-title'
  AND n.gender = 'f'
  AND rt.role = 'actress'
  AND t.production_year > 1990;
