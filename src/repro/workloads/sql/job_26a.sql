-- name: job_26a
SELECT COUNT(*) AS count_star
FROM complete_cast AS cc,
     comp_cast_type AS cct,
     char_name AS chn,
     cast_info AS ci,
     info_type AS it,
     keyword AS k,
     kind_type AS kt,
     movie_info_idx AS mi_idx,
     movie_keyword AS mk,
     name AS n,
     title AS t
WHERE cc.movie_id = t.id
  AND cc.subject_id = cct.id
  AND ci.person_role_id = chn.id
  AND ci.person_id = n.id
  AND ci.movie_id = t.id
  AND mi_idx.movie_id = t.id
  AND mi_idx.info_type_id = it.id
  AND mk.movie_id = t.id
  AND mk.keyword_id = k.id
  AND t.kind_id = kt.id
  AND cct.kind = 'cast'
  AND it.info = 'rating'
  AND k.keyword = 'character-name-in-title'
  AND kt.kind = 'movie'
  AND mi_idx.info_rating > 6.0
  AND n.gender = 'f'
  AND t.production_year > 1990;
