-- name: job_27a
SELECT COUNT(*) AS count_star
FROM complete_cast AS cc,
     comp_cast_type AS cct,
     company_name AS cn,
     company_type AS ct,
     keyword AS k,
     link_type AS lt,
     movie_companies AS mc,
     movie_keyword AS mk,
     movie_link AS ml,
     title AS t
WHERE cc.movie_id = t.id
  AND cc.subject_id = cct.id
  AND mc.company_id = cn.id
  AND mc.company_type_id = ct.id
  AND mc.movie_id = t.id
  AND mk.movie_id = t.id
  AND mk.keyword_id = k.id
  AND ml.movie_id = t.id
  AND ml.link_type_id = lt.id
  AND cct.kind = 'cast'
  AND cn.country_code = '[us]'
  AND ct.kind = 'production companies'
  AND k.keyword = 'character-name-in-title'
  AND lt.link = 'follows'
  AND t.production_year > 1990;
