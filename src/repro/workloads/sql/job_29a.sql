-- name: job_29a
SELECT COUNT(*) AS count_star
FROM aka_name AS an,
     complete_cast AS cc,
     comp_cast_type AS cct,
     char_name AS chn,
     cast_info AS ci,
     company_name AS cn,
     info_type AS it,
     info_type AS it2,
     keyword AS k,
     kind_type AS kt,
     movie_companies AS mc,
     movie_info AS mi,
     movie_keyword AS mk,
     name AS n,
     role_type AS rt,
     person_info AS pi,
     title AS t
WHERE an.person_id = n.id
  AND cc.movie_id = t.id
  AND cc.subject_id = cct.id
  AND ci.person_role_id = chn.id
  AND ci.person_id = n.id
  AND ci.movie_id = t.id
  AND ci.role_id = rt.id
  AND mc.company_id = cn.id
  AND mc.movie_id = t.id
  AND mi.movie_id = t.id
  AND mi.info_type_id = it.id
  AND mk.movie_id = t.id
  AND mk.keyword_id = k.id
  AND t.kind_id = kt.id
  AND pi.person_id = n.id
  AND pi.info_type_id = it2.id
  AND cct.kind = 'cast'
  AND cn.country_code = '[us]'
  AND it.info = 'rating'
  AND it2.info = 'votes'
  AND k.keyword = 'character-name-in-title'
  AND kt.kind = 'movie'
  AND n.gender = 'f'
  AND rt.role = 'actress'
  AND t.production_year > 1990;
