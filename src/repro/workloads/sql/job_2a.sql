-- name: job_2a
SELECT COUNT(*) AS count_star
FROM company_name AS cn,
     keyword AS k,
     movie_companies AS mc,
     movie_keyword AS mk,
     title AS t
WHERE mc.company_id = cn.id
  AND mc.movie_id = t.id
  AND mk.movie_id = t.id
  AND mk.keyword_id = k.id
  AND cn.country_code = '[us]'
  AND k.keyword = 'character-name-in-title'
  AND t.production_year > 1990;
