-- name: job_31a
SELECT COUNT(*) AS count_star
FROM cast_info AS ci,
     company_name AS cn,
     info_type AS it,
     info_type AS it2,
     keyword AS k,
     movie_companies AS mc,
     movie_info AS mi,
     movie_info_idx AS mi_idx,
     movie_keyword AS mk,
     name AS n,
     title AS t
WHERE ci.person_id = n.id
  AND ci.movie_id = t.id
  AND mc.company_id = cn.id
  AND mc.movie_id = t.id
  AND mi.movie_id = t.id
  AND mi.info_type_id = it.id
  AND mi_idx.movie_id = t.id
  AND mi_idx.info_type_id = it2.id
  AND mk.movie_id = t.id
  AND mk.keyword_id = k.id
  AND cn.country_code = '[us]'
  AND it.info = 'rating'
  AND it2.info = 'votes'
  AND k.keyword = 'character-name-in-title'
  AND mi_idx.info_rating > 6.0
  AND n.gender = 'f'
  AND t.production_year > 1990;
