-- name: job_32a
SELECT COUNT(*) AS count_star
FROM keyword AS k,
     link_type AS lt,
     movie_keyword AS mk,
     movie_link AS ml,
     title AS t
WHERE mk.keyword_id = k.id
  AND mk.movie_id = t.id
  AND ml.movie_id = t.id
  AND ml.link_type_id = lt.id
  AND k.keyword = 'character-name-in-title'
  AND lt.link = 'follows'
  AND t.production_year > 1990;
