-- name: job_33a
SELECT COUNT(*) AS count_star
FROM company_name AS cn,
     info_type AS it,
     kind_type AS kt,
     link_type AS lt,
     movie_companies AS mc,
     movie_info_idx AS mi_idx,
     movie_link AS ml,
     title AS t
WHERE mc.company_id = cn.id
  AND mc.movie_id = t.id
  AND mi_idx.movie_id = t.id
  AND mi_idx.info_type_id = it.id
  AND ml.movie_id = t.id
  AND ml.link_type_id = lt.id
  AND t.kind_id = kt.id
  AND cn.country_code = '[us]'
  AND it.info = 'rating'
  AND kt.kind = 'movie'
  AND lt.link = 'follows'
  AND mi_idx.info_rating > 6.0
  AND t.production_year > 1990;
