-- name: job_3a
SELECT COUNT(*) AS count_star
FROM keyword AS k,
     movie_info AS mi,
     movie_keyword AS mk,
     title AS t
WHERE mk.keyword_id = k.id
  AND mk.movie_id = t.id
  AND mi.movie_id = t.id
  AND k.keyword = 'character-name-in-title'
  AND t.production_year > 1990;
