-- name: job_4a
SELECT COUNT(*) AS count_star
FROM info_type AS it,
     keyword AS k,
     movie_info_idx AS mi_idx,
     movie_keyword AS mk,
     title AS t
WHERE mi_idx.info_type_id = it.id
  AND mi_idx.movie_id = t.id
  AND mk.movie_id = t.id
  AND mk.keyword_id = k.id
  AND it.info = 'rating'
  AND k.keyword = 'character-name-in-title'
  AND mi_idx.info_rating > 6.0
  AND t.production_year > 1990;
