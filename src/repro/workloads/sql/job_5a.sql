-- name: job_5a
SELECT COUNT(*) AS count_star
FROM company_type AS ct,
     info_type AS it,
     movie_companies AS mc,
     movie_info AS mi,
     title AS t
WHERE mc.company_type_id = ct.id
  AND mc.movie_id = t.id
  AND mi.movie_id = t.id
  AND mi.info_type_id = it.id
  AND ct.kind = 'production companies'
  AND it.info = 'rating'
  AND t.production_year > 1990;
