-- name: job_6a
SELECT COUNT(*) AS count_star
FROM cast_info AS ci,
     keyword AS k,
     movie_keyword AS mk,
     name AS n,
     title AS t
WHERE ci.movie_id = t.id
  AND ci.person_id = n.id
  AND mk.movie_id = t.id
  AND mk.keyword_id = k.id
  AND k.keyword = 'character-name-in-title'
  AND n.gender = 'f'
  AND t.production_year > 1990;
