-- name: job_7a
SELECT COUNT(*) AS count_star
FROM aka_name AS an,
     cast_info AS ci,
     info_type AS it,
     link_type AS lt,
     movie_link AS ml,
     name AS n,
     person_info AS pi,
     title AS t
WHERE an.person_id = n.id
  AND ci.person_id = n.id
  AND ci.movie_id = t.id
  AND ml.movie_id = t.id
  AND ml.link_type_id = lt.id
  AND pi.person_id = n.id
  AND pi.info_type_id = it.id
  AND it.info = 'rating'
  AND lt.link = 'follows'
  AND n.gender = 'f'
  AND t.production_year > 1990;
