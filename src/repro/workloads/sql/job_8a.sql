-- name: job_8a
SELECT COUNT(*) AS count_star
FROM aka_name AS an,
     cast_info AS ci,
     company_name AS cn,
     movie_companies AS mc,
     name AS n,
     role_type AS rt,
     title AS t
WHERE an.person_id = n.id
  AND ci.person_id = n.id
  AND ci.movie_id = t.id
  AND ci.role_id = rt.id
  AND mc.movie_id = t.id
  AND mc.company_id = cn.id
  AND cn.country_code = '[us]'
  AND n.gender = 'f'
  AND rt.role = 'actress'
  AND t.production_year > 1990;
