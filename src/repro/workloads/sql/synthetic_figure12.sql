-- name: figure12
SELECT COUNT(*) AS count_star
FROM r_table AS r,
     s_table AS s,
     t_table AS t
WHERE r.b = s.b
  AND s.c = t.c;
