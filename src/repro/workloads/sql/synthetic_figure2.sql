-- name: figure2
SELECT COUNT(*) AS count_star
FROM r_table AS r,
     s_table AS s,
     t_table AS t
WHERE r.a = s.a
  AND r.b = t.b
  AND s.c < 150;
