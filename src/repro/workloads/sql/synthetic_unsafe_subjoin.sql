-- name: unsafe_subjoin
SELECT COUNT(*) AS count_star
FROM r_table AS r,
     s_table AS s,
     t_table AS t
WHERE r.a = s.a
  AND r.b = s.b
  AND r.b = t.b
  AND r.c = t.c;
