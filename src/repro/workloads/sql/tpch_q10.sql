-- name: tpch_q10
SELECT COUNT(*) AS count_star
FROM customer AS c,
     orders AS o,
     lineitem AS l,
     nation AS n
WHERE o.o_custkey = c.c_custkey
  AND l.l_orderkey = o.o_orderkey
  AND c.c_nationkey = n.n_nationkey
  AND o.o_orderdate BETWEEN 800 AND 890
  AND l.l_returnflag = 'R';
