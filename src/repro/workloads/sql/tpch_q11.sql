-- name: tpch_q11
SELECT COUNT(*) AS count_star
FROM partsupp AS ps,
     supplier AS s,
     nation AS n
WHERE ps.ps_suppkey = s.s_suppkey
  AND s.s_nationkey = n.n_nationkey
  AND n.n_name = 'NATION#000007';
