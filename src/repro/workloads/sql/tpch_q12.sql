-- name: tpch_q12
SELECT COUNT(*) AS count_star
FROM orders AS o,
     lineitem AS l
WHERE l.l_orderkey = o.o_orderkey
  AND (l.l_shipmode IN ('MAIL', 'SHIP') AND l.l_receiptdate < 1000);
