-- name: tpch_q13
SELECT COUNT(*) AS count_star
FROM customer AS c,
     orders AS o
WHERE o.o_custkey = c.c_custkey
  AND o.o_orderpriority = '1-URGENT';
