-- name: tpch_q14
SELECT COUNT(*) AS count_star
FROM lineitem AS l,
     part AS p
WHERE l.l_partkey = p.p_partkey
  AND l.l_shipdate BETWEEN 1000 AND 1030;
