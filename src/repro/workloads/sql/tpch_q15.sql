-- name: tpch_q15
SELECT COUNT(*) AS count_star
FROM supplier AS s,
     lineitem AS l
WHERE l.l_suppkey = s.s_suppkey
  AND l.l_shipdate BETWEEN 1200 AND 1290;
