-- name: tpch_q16
SELECT COUNT(*) AS count_star
FROM partsupp AS ps,
     part AS p,
     supplier AS s
WHERE ps.ps_partkey = p.p_partkey
  AND ps.ps_suppkey = s.s_suppkey
  AND p.p_size IN (9, 14, 19, 23, 36, 45, 49, 3)
  AND s.s_comment_has_complaint = 0;
