-- name: tpch_q17
SELECT COUNT(*) AS count_star
FROM lineitem AS l,
     part AS p
WHERE l.l_partkey = p.p_partkey
  AND l.l_quantity < 3
  AND (p.p_brand = 'Brand#23' AND p.p_container = 'MED BAG');
