-- name: tpch_q18
SELECT COUNT(*) AS count_star
FROM customer AS c,
     orders AS o,
     lineitem AS l
WHERE o.o_custkey = c.c_custkey
  AND l.l_orderkey = o.o_orderkey
  AND o.o_totalprice > 400000.0;
