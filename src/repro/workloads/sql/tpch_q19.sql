-- name: tpch_q19
SELECT COUNT(*) AS count_star
FROM lineitem AS l,
     part AS p
WHERE l.l_partkey = p.p_partkey
  AND (l.l_shipmode IN ('AIR', 'REG AIR') AND l.l_quantity < 20)
  AND p.p_container IN ('SM CASE', 'SM BOX', 'MED BAG');
