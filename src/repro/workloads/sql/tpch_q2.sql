-- name: tpch_q2
SELECT COUNT(*) AS count_star
FROM part AS p,
     partsupp AS ps,
     supplier AS s,
     nation AS n,
     region AS r
WHERE ps.ps_partkey = p.p_partkey
  AND ps.ps_suppkey = s.s_suppkey
  AND s.s_nationkey = n.n_nationkey
  AND n.n_regionkey = r.r_regionkey
  AND (p.p_size = 15 OR p.p_size = 23)
  AND r.r_name = 'EUROPE';
