-- name: tpch_q20
SELECT COUNT(*) AS count_star
FROM supplier AS s,
     nation AS n,
     partsupp AS ps,
     part AS p
WHERE s.s_nationkey = n.n_nationkey
  AND ps.ps_suppkey = s.s_suppkey
  AND ps.ps_partkey = p.p_partkey
  AND n.n_name = 'NATION#000012'
  AND p.p_name LIKE 'part#00001%';
