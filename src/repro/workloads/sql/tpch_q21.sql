-- name: tpch_q21
SELECT COUNT(*) AS count_star
FROM supplier AS s,
     lineitem AS l,
     orders AS o,
     nation AS n
WHERE l.l_suppkey = s.s_suppkey
  AND l.l_orderkey = o.o_orderkey
  AND s.s_nationkey = n.n_nationkey
  AND l.l_receiptdate > 1400
  AND o.o_orderstatus = 'F'
  AND n.n_name = 'NATION#000020';
