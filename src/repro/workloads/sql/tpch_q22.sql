-- name: tpch_q22
SELECT COUNT(*) AS count_star
FROM customer AS c,
     orders AS o
WHERE o.o_custkey = c.c_custkey
  AND c.c_acctbal > 5000.0;
