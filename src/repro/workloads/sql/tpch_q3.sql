-- name: tpch_q3
SELECT COUNT(*) AS count_star
FROM customer AS c,
     orders AS o,
     lineitem AS l
WHERE o.o_custkey = c.c_custkey
  AND l.l_orderkey = o.o_orderkey
  AND c.c_mktsegment = 'BUILDING'
  AND o.o_orderdate < 1200
  AND l.l_shipdate > 1200;
