-- name: tpch_q4
SELECT COUNT(*) AS count_star
FROM orders AS o,
     lineitem AS l
WHERE l.l_orderkey = o.o_orderkey
  AND o.o_orderdate BETWEEN 1000 AND 1090;
