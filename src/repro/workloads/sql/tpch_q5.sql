-- name: tpch_q5
SELECT COUNT(*) AS count_star
FROM customer AS c,
     orders AS o,
     lineitem AS l,
     supplier AS s,
     nation AS n,
     region AS r
WHERE o.o_custkey = c.c_custkey
  AND l.l_orderkey = o.o_orderkey
  AND l.l_suppkey = s.s_suppkey
  AND c.c_nationkey = s.s_nationkey
  AND s.s_nationkey = n.n_nationkey
  AND n.n_regionkey = r.r_regionkey
  AND o.o_orderdate BETWEEN 400 AND 765
  AND r.r_name = 'ASIA';
