-- name: tpch_q7
SELECT COUNT(*) AS count_star
FROM supplier AS s,
     lineitem AS l,
     orders AS o,
     customer AS c,
     nation AS n1,
     nation AS n2
WHERE l.l_suppkey = s.s_suppkey
  AND l.l_orderkey = o.o_orderkey
  AND o.o_custkey = c.c_custkey
  AND s.s_nationkey = n1.n_nationkey
  AND c.c_nationkey = n2.n_nationkey
  AND l.l_shipdate BETWEEN 700 AND 1430
  AND n1.n_name IN ('NATION#000001', 'NATION#000002')
  AND n2.n_name IN ('NATION#000003', 'NATION#000004');
