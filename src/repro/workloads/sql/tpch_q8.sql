-- name: tpch_q8
SELECT COUNT(*) AS count_star
FROM part AS p,
     lineitem AS l,
     supplier AS s,
     orders AS o,
     customer AS c,
     nation AS n1,
     nation AS n2,
     region AS r
WHERE l.l_partkey = p.p_partkey
  AND l.l_suppkey = s.s_suppkey
  AND l.l_orderkey = o.o_orderkey
  AND o.o_custkey = c.c_custkey
  AND c.c_nationkey = n1.n_nationkey
  AND n1.n_regionkey = r.r_regionkey
  AND s.s_nationkey = n2.n_nationkey
  AND p.p_type = 'ECONOMY'
  AND o.o_orderdate BETWEEN 365 AND 1095
  AND r.r_name = 'AMERICA';
