-- name: tpch_q9
SELECT COUNT(*) AS count_star
FROM part AS p,
     supplier AS s,
     lineitem AS l,
     partsupp AS ps,
     orders AS o,
     nation AS n
WHERE l.l_partkey = p.p_partkey
  AND l.l_suppkey = s.s_suppkey
  AND ps.ps_partkey = l.l_partkey
  AND ps.ps_suppkey = l.l_suppkey
  AND l.l_orderkey = o.o_orderkey
  AND s.s_nationkey = n.n_nationkey
  AND p.p_name LIKE 'part#0000%';
