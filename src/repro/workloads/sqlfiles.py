"""Checked-in SQL workload files and their loader.

``src/repro/workloads/sql/`` holds one ``.sql`` file per workload query —
the synthetic adversarial instances, all TPC-H join queries, and all 33 JOB
templates — generated from the hand-built :class:`~repro.query.QuerySpec`
definitions by :func:`regenerate` via the ``QuerySpec → SQL`` formatter.
Each file starts with a ``-- name:`` directive, so running it through
:meth:`Database.sql <repro.engine.database.Database.sql>` produces the same
query name (and, as the test suite proves, bit-identical results) as the
hand-built spec.

The loader is deliberately text-first: :func:`sql_text` returns raw SQL, and
binding happens against whatever database the caller supplies — the same
contract a real benchmark harness has when it feeds ``.sql`` files to an
engine under test.

:func:`run_all` executes every checked-in file end to end (used by the CI
SQL-workload leg): it loads/constructs the owning workload's database,
compiles each file through the SQL front end, executes it, and cross-checks
the aggregates against the hand-built spec executed under the same plan.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Dict, List, Optional

from repro.engine.database import Database, ExecutionOptions
from repro.engine.modes import ExecutionConfig, ExecutionMode
from repro.errors import ReproError, WorkloadError
from repro.query import QuerySpec
from repro.sql import to_sql
from repro.workloads import job, synthetic, tpch

#: Directory of the checked-in ``.sql`` files.
SQL_DIR = Path(__file__).resolve().parent / "sql"

#: Workload key → filename prefix of its ``.sql`` files.
_PREFIXES = {"synthetic": "synthetic_", "tpch": "tpch_", "job": "job_"}


def available() -> Dict[str, Path]:
    """All checked-in ``.sql`` files, keyed by file stem, in sorted order."""
    return {path.stem: path for path in sorted(SQL_DIR.glob("*.sql"))}


def sql_path(stem: str) -> Path:
    """Path of one checked-in ``.sql`` file (e.g. ``"tpch_q5"``, ``"job_2a"``)."""
    path = SQL_DIR / f"{stem}.sql"
    if not path.is_file():
        known = ", ".join(sorted(available())) or "(none)"
        raise WorkloadError(f"no checked-in SQL file {stem!r} (available: {known})")
    return path


def sql_text(stem: str) -> str:
    """Raw SQL text of one checked-in file."""
    return sql_path(stem).read_text()


def workload_of(stem: str) -> str:
    """Which workload a file stem belongs to (by filename prefix)."""
    for workload, prefix in _PREFIXES.items():
        if stem.startswith(prefix):
            return workload
    raise WorkloadError(
        f"SQL file stem {stem!r} matches no workload prefix {sorted(_PREFIXES.values())}"
    )


def stems_for(workload: str) -> List[str]:
    """File stems of one workload's checked-in queries, sorted."""
    if workload not in _PREFIXES:
        raise WorkloadError(
            f"unknown workload {workload!r}; expected one of {sorted(_PREFIXES)}"
        )
    prefix = _PREFIXES[workload]
    return [stem for stem in available() if stem.startswith(prefix)]


# ---------------------------------------------------------------------------
# Hand-built counterparts (for generation and bit-identity checks)
# ---------------------------------------------------------------------------
def handbuilt_specs() -> Dict[str, QuerySpec]:
    """File stem → the hand-built ``QuerySpec`` the checked-in file mirrors."""
    specs: Dict[str, QuerySpec] = {}
    for instance in _synthetic_instances().values():
        specs[f"synthetic_{instance.query.name}"] = instance.query
    for number in tpch.query_numbers():
        spec = tpch.query(number)
        specs[spec.name] = spec  # names are already "tpch_qN"
    for number in job.template_numbers():
        spec = job.query(number)
        specs[spec.name] = spec  # names are already "job_Na"
    return specs


def _synthetic_instances() -> Dict[str, synthetic.SyntheticInstance]:
    """Query name → freshly built synthetic instance (each owns its database)."""
    instances = (
        synthetic.figure2_instance(),
        synthetic.figure12_instance(),
        synthetic.unsafe_subjoin_instance(),
    )
    return {instance.query.name: instance for instance in instances}


def database_for(
    workload: str,
    scale: float = 0.1,
    seed: int = 1,
    synthetic_query: Optional[str] = None,
) -> Database:
    """Build the database a workload's SQL files bind against.

    For ``"synthetic"``, each query owns its own instance, so
    ``synthetic_query`` (the query name, e.g. ``"figure2"``) is required.
    """
    if workload == "tpch":
        db = Database()
        tpch.load(db, scale=scale, seed=seed)
        return db
    if workload == "job":
        db = Database()
        job.load(db, scale=scale, seed=seed)
        return db
    if workload == "synthetic":
        instances = _synthetic_instances()
        if synthetic_query not in instances:
            raise WorkloadError(
                f"unknown synthetic query {synthetic_query!r} "
                f"(expected one of {sorted(instances)})"
            )
        return instances[synthetic_query].database
    raise WorkloadError(f"unknown workload {workload!r}; expected one of {sorted(_PREFIXES)}")


# ---------------------------------------------------------------------------
# Generation (kept runnable so the files can never drift from the specs)
# ---------------------------------------------------------------------------
def rendered_files() -> Dict[str, str]:
    """File stem → the SQL text :func:`regenerate` would write."""
    return {stem: to_sql(spec) for stem, spec in handbuilt_specs().items()}


def regenerate(directory: Optional[Path] = None) -> List[Path]:
    """(Re)write every workload ``.sql`` file from the hand-built specs.

    The test suite asserts the checked-in files equal :func:`rendered_files`,
    so after changing a workload query definition, run::

        PYTHONPATH=src python -c "from repro.workloads import sqlfiles; sqlfiles.regenerate()"
    """
    directory = directory or SQL_DIR
    directory.mkdir(parents=True, exist_ok=True)
    written = []
    for stem, text in sorted(rendered_files().items()):
        path = directory / f"{stem}.sql"
        path.write_text(text)
        written.append(path)
    return written


# ---------------------------------------------------------------------------
# Execution harness (the CI SQL-workload leg)
# ---------------------------------------------------------------------------
def run_all(
    mode: ExecutionMode = ExecutionMode.RPT,
    options: Optional[ExecutionOptions] = None,
    scale: float = 0.1,
    seed: int = 1,
    verify_against_handbuilt: bool = True,
    database_cache: Optional[Dict[str, Database]] = None,
) -> List[Dict[str, object]]:
    """Execute every checked-in ``.sql`` file through ``Database.sql``.

    Returns one record per file: ``{"stem", "name", "workload",
    "aggregates", "matches_handbuilt"}``.  With
    ``verify_against_handbuilt`` (the default), each SQL execution is
    compared against the hand-built spec executed with the same plan and
    options; a mismatch raises :class:`WorkloadError` — this is the
    bit-identity contract CI enforces.
    """
    specs = handbuilt_specs()
    databases: Dict[str, Database] = database_cache if database_cache is not None else {}
    records: List[Dict[str, object]] = []
    for stem, path in available().items():
        workload = workload_of(stem)
        if workload == "synthetic":
            query_name = stem[len("synthetic_") :]
            cache_key = f"synthetic:{query_name}"
            if cache_key not in databases:
                databases[cache_key] = database_for("synthetic", synthetic_query=query_name)
            db = databases[cache_key]
        else:
            if workload not in databases:
                databases[workload] = database_for(workload, scale=scale, seed=seed)
            db = databases[workload]
        result = db.sql(path.read_text(), mode=mode, options=options)
        record: Dict[str, object] = {
            "stem": stem,
            "name": result.query.name,
            "workload": workload,
            "aggregates": dict(result.aggregates),
        }
        if verify_against_handbuilt:
            if stem not in specs:
                raise WorkloadError(f"SQL file {stem!r} has no hand-built counterpart")
            expected = db.execute(specs[stem], mode=mode, plan=result.plan, options=options)
            matches = expected.aggregates == result.aggregates
            record["matches_handbuilt"] = matches
            if not matches:
                raise WorkloadError(
                    f"SQL file {stem!r} diverged from its hand-built spec under "
                    f"{mode.value}: {result.aggregates} != {expected.aggregates}"
                )
        records.append(record)
    return records


def run_fault_sweep(
    fault_spec: str,
    backend: str = "serial",
    mode: ExecutionMode = ExecutionMode.RPT,
    scale: float = 0.1,
    seed: int = 1,
    timeout_seconds: Optional[float] = None,
    database_cache: Optional[Dict[str, Database]] = None,
    stems: Optional[List[str]] = None,
) -> List[Dict[str, object]]:
    """Run every checked-in ``.sql`` workload under deterministic fault injection.

    This is the fault-tolerance acceptance contract (used by the CI
    fault-injection leg and ``tests/test_faults.py``): under any
    :class:`~repro.exec.faults.FaultPlan`, every query must either complete
    with aggregates **bit-identical** to a fault-free serial execution or
    raise a typed :class:`~repro.errors.ReproError` subclass — and either
    way leave no shared-memory segment and no outstanding memory-governor
    reservation behind.  Any other outcome raises :class:`WorkloadError`.

    Returns one record per file: ``{"stem", "workload", "outcome"}`` where
    ``outcome`` is ``"completed"`` (bit-identical) or the name of the typed
    error class that was raised.  ``stems`` restricts the sweep to a subset
    of files (the full set when ``None``).
    """
    import gc

    from repro.exec import faults
    from repro.storage import buffer, shm

    selected = {
        stem: path
        for stem, path in available().items()
        if stems is None or stem in stems
    }
    databases: Dict[str, Database] = database_cache if database_cache is not None else {}

    def database_of(stem: str, workload: str) -> Database:
        if workload == "synthetic":
            query_name = stem[len("synthetic_") :]
            cache_key = f"synthetic:{query_name}"
            if cache_key not in databases:
                databases[cache_key] = database_for("synthetic", synthetic_query=query_name)
            return databases[cache_key]
        if workload not in databases:
            databases[workload] = database_for(workload, scale=scale, seed=seed)
        return databases[workload]

    # Fault-free serial baselines, computed with injection disabled.
    faults.clear()
    serial_options = ExecutionOptions(execution=ExecutionConfig(backend="serial"))
    baselines: Dict[str, Dict[str, float]] = {}
    for stem, path in selected.items():
        db = database_of(stem, workload_of(stem))
        baselines[stem] = dict(db.sql(path.read_text(), mode=mode, options=serial_options).aggregates)

    options = ExecutionOptions(
        execution=ExecutionConfig(
            backend=backend, faults=fault_spec, timeout_seconds=timeout_seconds
        )
    )
    records: List[Dict[str, object]] = []
    for stem, path in selected.items():
        workload = workload_of(stem)
        db = database_of(stem, workload)
        try:
            result = db.sql(path.read_text(), mode=mode, options=options)
        except ReproError as error:
            outcome = type(error).__name__
        else:
            if dict(result.aggregates) != baselines[stem]:
                raise WorkloadError(
                    f"SQL file {stem!r} diverged from its fault-free serial baseline "
                    f"under faults {fault_spec!r} on backend {backend!r}: "
                    f"{dict(result.aggregates)} != {baselines[stem]}"
                )
            outcome = "completed"
        # The no-leak invariant, checked after *every* query: the only live
        # segments are the arena-published base columns (owned, persistent by
        # design), and no governor holds a reservation.
        try:
            shm.assert_no_transient_leaks()
        except ReproError as error:
            raise WorkloadError(
                f"SQL file {stem!r} leaked under faults {fault_spec!r}: {error}"
            ) from error
        gc.collect()
        outstanding = buffer.outstanding_reservations()
        if outstanding:
            raise WorkloadError(
                f"SQL file {stem!r} leaked governor reservations under faults "
                f"{fault_spec!r}: {outstanding}"
            )
        records.append({"stem": stem, "workload": workload, "outcome": outcome})
    faults.clear()
    return records
