"""Synthetic adversarial instances used in the paper's analytical examples.

Three constructions:

* :func:`figure2_instance` — the three-relation query of Figure 2
  (``R(A,B) ⋈ S(A,C) ⋈ T(B,D)`` with ``|R| < |S| < |T|``) where the original
  Small2Large heuristic fails to connect S and T and therefore cannot fully
  reduce when S carries a selective predicate.

* :func:`figure12_instance` — the quadratic-blowup example of Figure 12:
  a query ``R(A,B) ⋈ S(B,C) ⋈ T(C)`` whose output is empty, yet *any* plan
  without a semi-join reduction must materialize ``N²/2`` intermediate
  tuples, while RPT's transfer phase empties the inputs up front.

* :func:`unsafe_subjoin_instance` — the §3.2 example
  ``R(A,B,C) ⋈ S(A,B) ⋈ T(B,C)`` on a fully reduced instance where the
  subjoin ``S ⋈ T`` blows up quadratically even though the query output is
  linear; used to validate SafeSubjoin.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engine.database import Database
from repro.expr import lt
from repro.query import JoinCondition, QuerySpec, RelationRef


@dataclass(frozen=True)
class SyntheticInstance:
    """A generated database plus the query that exercises it."""

    database: Database
    query: QuerySpec
    description: str


def figure2_instance(base_size: int = 100) -> SyntheticInstance:
    """The Figure 2 example where Small2Large fails to connect S and T.

    ``R(A,B)`` is the smallest relation (a bijection between A and B values),
    ``S(A,C)`` carries a selective predicate that removes some A values but
    still leaves S larger than R, and ``T(B,D)`` is the largest.  A full
    reduction must remove the T tuples whose B value maps (through R) to an A
    value eliminated from S; Small2Large orients both edges away from R and
    therefore never transfers S's filter to T.
    """
    db = Database()
    n_r, n_s, n_t = base_size, base_size * 20, base_size * 4
    rng = np.random.default_rng(3)
    domain = np.arange(base_size, dtype=np.int64)
    db.register_dataframe(
        "r_table",
        # A bijection a = b = i so S's surviving A values determine T's surviving B values.
        {"a": domain, "b": domain},
    )
    db.register_dataframe(
        "s_table",
        {"a": rng.integers(0, base_size, n_s), "c": np.arange(n_s, dtype=np.int64)},
    )
    db.register_dataframe(
        "t_table",
        {"b": rng.integers(0, base_size, n_t), "d": np.arange(n_t, dtype=np.int64)},
    )
    # Keep ~1.5x |R| rows of S: selective on A values yet |S filtered| > |R|,
    # preserving the |R| < |S| < |T| premise of Figure 2 after filtering.
    query = QuerySpec(
        name="figure2",
        relations=(
            RelationRef("r", "r_table"),
            RelationRef("s", "s_table", lt("c", (3 * n_r) // 2)),
            RelationRef("t", "t_table"),
        ),
        joins=(
            JoinCondition("r", "a", "s", "a"),
            JoinCondition("r", "b", "t", "b"),
        ),
    )
    return SyntheticInstance(
        database=db,
        query=query,
        description="Figure 2: Small2Large cannot connect S and T; RPT can.",
    )


def figure12_instance(n: int = 1000) -> SyntheticInstance:
    """The Figure 12 quadratic-blowup example.

    ``R(A,B)``: A = 1..N/2 each appearing twice with B = 1; B also takes value
    2 on half the tuples.  ``S(B,C)``: N tuples with B = 1, C = 2 and B = 2,
    C = 2 patterns arranged so that ``R ⋈ S`` has ~N²/2 tuples while
    ``R ⋈ S ⋈ T`` is empty because ``T(C)`` contains only values that never
    survive.  Any join order without pre-filtering processes a quadratic
    intermediate; the RPT transfer phase empties every input.
    """
    half = max(n // 2, 1)
    db = Database()
    # R(A, B): every A in 1..half appears with B = 1.
    db.register_dataframe(
        "r_table",
        {
            "a": np.repeat(np.arange(1, half + 1, dtype=np.int64), 2),
            "b": np.ones(2 * half, dtype=np.int64),
        },
    )
    # S(B, C): n tuples, all with B = 1 and C = 2.
    db.register_dataframe(
        "s_table",
        {
            "b": np.ones(n, dtype=np.int64),
            "c": np.full(n, 2, dtype=np.int64),
        },
    )
    # T(C): values that never match S's C (output is empty).
    db.register_dataframe(
        "t_table",
        {"c": np.full(max(n // 10, 1), 99, dtype=np.int64)},
    )
    query = QuerySpec(
        name="figure12",
        relations=(
            RelationRef("r", "r_table"),
            RelationRef("s", "s_table"),
            RelationRef("t", "t_table"),
        ),
        joins=(
            JoinCondition("r", "b", "s", "b"),
            JoinCondition("s", "c", "t", "c"),
        ),
    )
    return SyntheticInstance(
        database=db,
        query=query,
        description="Figure 12: empty output but quadratic R ⋈ S for any plan without RPT.",
    )


def unsafe_subjoin_instance(n: int = 500) -> SyntheticInstance:
    """The §3.2 example where subjoin S ⋈ T is unsafe on a fully reduced instance.

    ``R = {(i, 1, i)}``, ``S = {(i, 1)}``, ``T = {(1, i)}`` for i in 1..n:
    the full output has n tuples, but ``S(A,B) ⋈ T(B,C)`` has n² tuples.
    The query is α-acyclic but not γ-acyclic.
    """
    db = Database()
    i = np.arange(1, n + 1, dtype=np.int64)
    ones = np.ones(n, dtype=np.int64)
    db.register_dataframe("r_table", {"a": i, "b": ones, "c": i})
    db.register_dataframe("s_table", {"a": i, "b": ones})
    db.register_dataframe("t_table", {"b": ones, "c": i})
    query = QuerySpec(
        name="unsafe_subjoin",
        relations=(
            RelationRef("r", "r_table"),
            RelationRef("s", "s_table"),
            RelationRef("t", "t_table"),
        ),
        joins=(
            JoinCondition("r", "a", "s", "a"),
            JoinCondition("r", "b", "s", "b"),
            JoinCondition("r", "b", "t", "b"),
            JoinCondition("r", "c", "t", "c"),
        ),
    )
    return SyntheticInstance(
        database=db,
        query=query,
        description="§3.2: S ⋈ T is an unsafe subjoin (n² rows) though the output is linear.",
    )
