"""TPC-DS workload: synthetic schema/data generator and a representative query set.

TPC-DS is a snowflake-schema decision-support benchmark with 24 tables and 99
queries.  The reproduction generates the 22 tables that the evaluated join
structures touch, with the standard surrogate-key / foreign-key links
(sales fact tables referencing date, item, customer, demographics, store /
web / catalog dimensions, and returns fact tables referencing the sales).

The query set contains one :class:`~repro.query.QuerySpec` per reproduced
query.  It covers every query the paper *discusses individually* — Q13 and
Q48 (OR-of-AND post-join predicates), Q29 (acyclic but not γ-acyclic), Q54
and Q83 (original PT under-reduces), Q16/Q61/Q69 (empty results), and all
cyclic queries 19, 24, 46, 64, 68, 72, 85 — plus a broad sample of the
remaining star/snowflake join queries so that benchmark-level aggregates
(Tables 1-3) are computed over a few dozen queries per benchmark, as in the
paper.  The mapping from reproduced query to original query number is 1:1 by
name (``tpcds_q<number>``); queries not in the set are documented in
DESIGN.md as out of the reproduction's sample.
"""

from __future__ import annotations

from typing import Dict

from repro.engine.database import Database
from repro.errors import WorkloadError
from repro.expr import between, eq, ge, gt, isin, le, lt
from repro.query import (
    JoinCondition,
    PostJoinPredicate,
    QualifiedComparison,
    QuerySpec,
    RelationRef,
)
from repro.storage.table import ForeignKey
from repro.workloads.generator import (
    WorkloadScale,
    categorical_column,
    foreign_keys,
    names_column,
    numeric_column,
    primary_keys,
)

#: Base cardinalities at ``scale=1.0``.
BASE_ROWS = {
    "date_dim": 1_200,
    "time_dim": 600,
    "item": 1_200,
    "customer": 2_000,
    "customer_address": 1_000,
    "customer_demographics": 400,
    "household_demographics": 144,
    "store": 12,
    "call_center": 6,
    "web_site": 12,
    "web_page": 60,
    "warehouse": 5,
    "promotion": 60,
    "reason": 35,
    "ship_mode": 20,
    "store_sales": 30_000,
    "store_returns": 3_000,
    "catalog_sales": 15_000,
    "catalog_returns": 1_500,
    "web_sales": 8_000,
    "web_returns": 800,
    "inventory": 12_000,
}

_STATES = ["TN", "GA", "SC", "NC", "VA", "KY", "AL", "MS", "TX", "CA"]
_CATEGORIES = ["Books", "Electronics", "Home", "Jewelry", "Men", "Music", "Shoes", "Sports", "Women", "Children"]
_MARITAL = ["D", "M", "S", "U", "W"]
_EDUCATION = ["Advanced Degree", "College", "Primary", "Secondary", "Unknown"]
_GENDER = ["M", "F"]


def load(
    db: Database,
    scale: float = 1.0,
    seed: int = 11,
    skew: float = 0.0,
    replace: bool = False,
) -> Dict[str, int]:
    """Generate and register the TPC-DS tables.

    ``skew > 0`` produces Zipf-skewed foreign keys in the fact tables; the
    DSB workload (:mod:`repro.workloads.dsb`) uses this to model its skewed
    data distributions.
    """
    ws = WorkloadScale(scale=scale, seed=seed)
    counts = {name: ws.rows(base) for name, base in BASE_ROWS.items()}
    for small in ("store", "call_center", "web_site", "warehouse", "ship_mode", "reason",
                  "household_demographics", "web_page", "promotion"):
        counts[small] = max(BASE_ROWS[small], 2)

    def reg(name, data, pk=(), fks=()):
        db.register_dataframe(name, data, primary_key=pk, foreign_keys=fks, replace=replace)

    # --- dimensions --------------------------------------------------------
    rng = ws.rng("date_dim")
    n = counts["date_dim"]
    reg(
        "date_dim",
        {
            "d_date_sk": primary_keys(n),
            "d_year": 1998 + (primary_keys(n) - 1) // 366,
            "d_moy": ((primary_keys(n) - 1) // 31) % 12 + 1,
            "d_dom": (primary_keys(n) - 1) % 31 + 1,
            "d_week_seq": (primary_keys(n) - 1) // 7 + 1,
            "d_qoy": (((primary_keys(n) - 1) // 31) % 12) // 3 + 1,
            "d_day_name": categorical_column(rng, n, ["Sunday", "Monday", "Tuesday", "Wednesday", "Thursday", "Friday", "Saturday"]),
        },
        pk=["d_date_sk"],
    )
    rng = ws.rng("time_dim")
    n = counts["time_dim"]
    reg(
        "time_dim",
        {
            "t_time_sk": primary_keys(n),
            "t_hour": numeric_column(rng, n, 0, 23, integer=True),
            "t_minute": numeric_column(rng, n, 0, 59, integer=True),
        },
        pk=["t_time_sk"],
    )
    rng = ws.rng("item")
    n = counts["item"]
    reg(
        "item",
        {
            "i_item_sk": primary_keys(n),
            "i_item_id": names_column("ITEM", n),
            "i_category": categorical_column(rng, n, _CATEGORIES),
            "i_brand_id": numeric_column(rng, n, 1, 100, integer=True),
            "i_class_id": numeric_column(rng, n, 1, 16, integer=True),
            "i_manufact_id": numeric_column(rng, n, 1, 100, integer=True),
            "i_current_price": numeric_column(rng, n, 0.5, 100.0),
            "i_color": categorical_column(rng, n, ["red", "blue", "green", "black", "white", "pink", "purple", "orange"]),
        },
        pk=["i_item_sk"],
    )
    rng = ws.rng("customer_address")
    n = counts["customer_address"]
    reg(
        "customer_address",
        {
            "ca_address_sk": primary_keys(n),
            "ca_state": categorical_column(rng, n, _STATES),
            "ca_city": categorical_column(rng, n, [f"City{i}" for i in range(40)]),
            "ca_zip": numeric_column(rng, n, 10000, 99999, integer=True),
            "ca_country": categorical_column(rng, n, ["United States"]),
            "ca_gmt_offset": numeric_column(rng, n, -8, -5, integer=True),
        },
        pk=["ca_address_sk"],
    )
    rng = ws.rng("customer_demographics")
    n = counts["customer_demographics"]
    reg(
        "customer_demographics",
        {
            "cd_demo_sk": primary_keys(n),
            "cd_gender": categorical_column(rng, n, _GENDER),
            "cd_marital_status": categorical_column(rng, n, _MARITAL),
            "cd_education_status": categorical_column(rng, n, _EDUCATION),
        },
        pk=["cd_demo_sk"],
    )
    rng = ws.rng("household_demographics")
    n = counts["household_demographics"]
    reg(
        "household_demographics",
        {
            "hd_demo_sk": primary_keys(n),
            "hd_dep_count": numeric_column(rng, n, 0, 9, integer=True),
            "hd_vehicle_count": numeric_column(rng, n, 0, 4, integer=True),
            "hd_buy_potential": categorical_column(rng, n, [">10000", "5001-10000", "1001-5000", "501-1000", "0-500", "Unknown"]),
        },
        pk=["hd_demo_sk"],
    )
    rng = ws.rng("customer")
    n = counts["customer"]
    reg(
        "customer",
        {
            "c_customer_sk": primary_keys(n),
            "c_current_addr_sk": foreign_keys(rng, n, counts["customer_address"]),
            "c_current_cdemo_sk": foreign_keys(rng, n, counts["customer_demographics"]),
            "c_current_hdemo_sk": foreign_keys(rng, n, counts["household_demographics"]),
            "c_birth_year": numeric_column(rng, n, 1930, 2000, integer=True),
            "c_birth_country": categorical_column(rng, n, ["United States"]),
        },
        pk=["c_customer_sk"],
        fks=[
            ForeignKey("c_current_addr_sk", "customer_address", "ca_address_sk"),
            ForeignKey("c_current_cdemo_sk", "customer_demographics", "cd_demo_sk"),
            ForeignKey("c_current_hdemo_sk", "household_demographics", "hd_demo_sk"),
        ],
    )
    rng = ws.rng("store")
    n = counts["store"]
    reg(
        "store",
        {
            "s_store_sk": primary_keys(n),
            "s_state": categorical_column(rng, n, _STATES[:4]),
            "s_city": categorical_column(rng, n, [f"City{i}" for i in range(10)]),
            "s_zip": numeric_column(rng, n, 10000, 99999, integer=True),
            "s_number_employees": numeric_column(rng, n, 200, 300, integer=True),
            "s_gmt_offset": numeric_column(rng, n, -8, -5, integer=True),
        },
        pk=["s_store_sk"],
    )
    rng = ws.rng("call_center")
    n = counts["call_center"]
    reg(
        "call_center",
        {
            "cc_call_center_sk": primary_keys(n),
            "cc_county": categorical_column(rng, n, [f"County{i}" for i in range(5)]),
        },
        pk=["cc_call_center_sk"],
    )
    rng = ws.rng("web_site")
    n = counts["web_site"]
    reg("web_site", {"web_site_sk": primary_keys(n), "web_company_name": names_column("site", n)}, pk=["web_site_sk"])
    rng = ws.rng("web_page")
    n = counts["web_page"]
    reg(
        "web_page",
        {"wp_web_page_sk": primary_keys(n), "wp_char_count": numeric_column(rng, n, 100, 8000, integer=True)},
        pk=["wp_web_page_sk"],
    )
    rng = ws.rng("warehouse")
    n = counts["warehouse"]
    reg("warehouse", {"w_warehouse_sk": primary_keys(n), "w_state": categorical_column(rng, n, _STATES[:5])}, pk=["w_warehouse_sk"])
    rng = ws.rng("promotion")
    n = counts["promotion"]
    reg(
        "promotion",
        {
            "p_promo_sk": primary_keys(n),
            "p_channel_email": categorical_column(rng, n, ["N", "Y"], [0.9, 0.1]),
            "p_channel_event": categorical_column(rng, n, ["N", "Y"], [0.5, 0.5]),
        },
        pk=["p_promo_sk"],
    )
    rng = ws.rng("reason")
    n = counts["reason"]
    reg("reason", {"r_reason_sk": primary_keys(n), "r_reason_desc": names_column("reason", n)}, pk=["r_reason_sk"])
    rng = ws.rng("ship_mode")
    n = counts["ship_mode"]
    reg("ship_mode", {"sm_ship_mode_sk": primary_keys(n), "sm_type": categorical_column(rng, n, ["EXPRESS", "LIBRARY", "NEXT DAY", "OVERNIGHT", "REGULAR", "TWO DAY"])}, pk=["sm_ship_mode_sk"])

    # --- fact tables --------------------------------------------------------
    def sales_fact(name: str, n_rows: int, prefix: str, extra: Dict) -> None:
        rng_local = ws.rng(name)
        data = {
            f"{prefix}_sold_date_sk": foreign_keys(rng_local, n_rows, counts["date_dim"], skew=skew),
            f"{prefix}_sold_time_sk": foreign_keys(rng_local, n_rows, counts["time_dim"], skew=skew),
            f"{prefix}_item_sk": foreign_keys(rng_local, n_rows, counts["item"], skew=skew),
            f"{prefix}_customer_sk": foreign_keys(rng_local, n_rows, counts["customer"], skew=skew),
            f"{prefix}_cdemo_sk": foreign_keys(rng_local, n_rows, counts["customer_demographics"], skew=skew),
            f"{prefix}_hdemo_sk": foreign_keys(rng_local, n_rows, counts["household_demographics"], skew=skew),
            f"{prefix}_addr_sk": foreign_keys(rng_local, n_rows, counts["customer_address"], skew=skew),
            f"{prefix}_promo_sk": foreign_keys(rng_local, n_rows, counts["promotion"], skew=skew),
            f"{prefix}_quantity": numeric_column(rng_local, n_rows, 1, 100, integer=True),
            f"{prefix}_sales_price": numeric_column(rng_local, n_rows, 1.0, 300.0),
            f"{prefix}_net_profit": numeric_column(rng_local, n_rows, -5000.0, 10000.0),
            f"{prefix}_ticket_number": numeric_column(rng_local, n_rows, 1, max(n_rows // 3, 2), integer=True),
        }
        data.update(extra(rng_local, n_rows) if callable(extra) else extra)
        fks = [
            ForeignKey(f"{prefix}_sold_date_sk", "date_dim", "d_date_sk"),
            ForeignKey(f"{prefix}_sold_time_sk", "time_dim", "t_time_sk"),
            ForeignKey(f"{prefix}_item_sk", "item", "i_item_sk"),
            ForeignKey(f"{prefix}_customer_sk", "customer", "c_customer_sk"),
            ForeignKey(f"{prefix}_cdemo_sk", "customer_demographics", "cd_demo_sk"),
            ForeignKey(f"{prefix}_hdemo_sk", "household_demographics", "hd_demo_sk"),
            ForeignKey(f"{prefix}_addr_sk", "customer_address", "ca_address_sk"),
            ForeignKey(f"{prefix}_promo_sk", "promotion", "p_promo_sk"),
        ]
        extra_fks = {
            "ss": [ForeignKey("ss_store_sk", "store", "s_store_sk")],
            "cs": [
                ForeignKey("cs_call_center_sk", "call_center", "cc_call_center_sk"),
                ForeignKey("cs_warehouse_sk", "warehouse", "w_warehouse_sk"),
                ForeignKey("cs_ship_mode_sk", "ship_mode", "sm_ship_mode_sk"),
                ForeignKey("cs_ship_date_sk", "date_dim", "d_date_sk"),
            ],
            "ws": [
                ForeignKey("ws_web_site_sk", "web_site", "web_site_sk"),
                ForeignKey("ws_web_page_sk", "web_page", "wp_web_page_sk"),
                ForeignKey("ws_ship_date_sk", "date_dim", "d_date_sk"),
            ],
        }[prefix]
        reg(name, data, fks=fks + extra_fks)

    sales_fact(
        "store_sales",
        counts["store_sales"],
        "ss",
        lambda r, m: {"ss_store_sk": foreign_keys(r, m, counts["store"], skew=skew),
                      "ss_coupon_amt": numeric_column(r, m, 0.0, 2000.0),
                      "ss_list_price": numeric_column(r, m, 1.0, 300.0),
                      "ss_ext_discount_amt": numeric_column(r, m, 0.0, 1000.0),
                      "ss_wholesale_cost": numeric_column(r, m, 1.0, 100.0)},
    )
    sales_fact(
        "catalog_sales",
        counts["catalog_sales"],
        "cs",
        lambda r, m: {"cs_call_center_sk": foreign_keys(r, m, counts["call_center"], skew=skew),
                      "cs_warehouse_sk": foreign_keys(r, m, counts["warehouse"], skew=skew),
                      "cs_ship_mode_sk": foreign_keys(r, m, counts["ship_mode"], skew=skew),
                      "cs_ship_date_sk": foreign_keys(r, m, counts["date_dim"], skew=skew),
                      "cs_list_price": numeric_column(r, m, 1.0, 300.0),
                      "cs_wholesale_cost": numeric_column(r, m, 1.0, 100.0)},
    )
    sales_fact(
        "web_sales",
        counts["web_sales"],
        "ws",
        lambda r, m: {"ws_web_site_sk": foreign_keys(r, m, counts["web_site"], skew=skew),
                      "ws_web_page_sk": foreign_keys(r, m, counts["web_page"], skew=skew),
                      "ws_ship_date_sk": foreign_keys(r, m, counts["date_dim"], skew=skew),
                      "ws_ext_discount_amt": numeric_column(r, m, 0.0, 1000.0)},
    )

    def returns_fact(name: str, n_rows: int, prefix: str, sales_prefix: str, sales_table: str) -> None:
        rng_local = ws.rng(name)
        sales = db.table(sales_table)
        picks = rng_local.integers(0, sales.num_rows, size=n_rows)
        data = {
            f"{prefix}_returned_date_sk": foreign_keys(rng_local, n_rows, counts["date_dim"], skew=skew),
            f"{prefix}_item_sk": sales.column(f"{sales_prefix}_item_sk").data[picks],
            f"{prefix}_customer_sk": sales.column(f"{sales_prefix}_customer_sk").data[picks],
            f"{prefix}_ticket_number": sales.column(f"{sales_prefix}_ticket_number").data[picks],
            f"{prefix}_reason_sk": foreign_keys(rng_local, n_rows, counts["reason"], skew=skew),
            f"{prefix}_return_amt": numeric_column(rng_local, n_rows, 1.0, 500.0),
            f"{prefix}_return_quantity": numeric_column(rng_local, n_rows, 1, 50, integer=True),
        }
        if prefix == "sr":
            data["sr_store_sk"] = sales.column("ss_store_sk").data[picks]
            data["sr_cdemo_sk"] = foreign_keys(rng_local, n_rows, counts["customer_demographics"], skew=skew)
        if prefix == "wr":
            data["wr_web_page_sk"] = sales.column("ws_web_page_sk").data[picks]
            data["wr_refunded_cdemo_sk"] = foreign_keys(rng_local, n_rows, counts["customer_demographics"], skew=skew)
            data["wr_returning_cdemo_sk"] = foreign_keys(rng_local, n_rows, counts["customer_demographics"], skew=skew)
            data["wr_refunded_addr_sk"] = foreign_keys(rng_local, n_rows, counts["customer_address"], skew=skew)
        fks = [
            ForeignKey(f"{prefix}_returned_date_sk", "date_dim", "d_date_sk"),
            ForeignKey(f"{prefix}_item_sk", "item", "i_item_sk"),
            ForeignKey(f"{prefix}_customer_sk", "customer", "c_customer_sk"),
            ForeignKey(f"{prefix}_reason_sk", "reason", "r_reason_sk"),
        ]
        reg(name, data, fks=fks)

    returns_fact("store_returns", counts["store_returns"], "sr", "ss", "store_sales")
    returns_fact("catalog_returns", counts["catalog_returns"], "cr", "cs", "catalog_sales")
    returns_fact("web_returns", counts["web_returns"], "wr", "ws", "web_sales")

    rng = ws.rng("inventory")
    n = counts["inventory"]
    reg(
        "inventory",
        {
            "inv_date_sk": foreign_keys(rng, n, counts["date_dim"], skew=skew),
            "inv_item_sk": foreign_keys(rng, n, counts["item"], skew=skew),
            "inv_warehouse_sk": foreign_keys(rng, n, counts["warehouse"], skew=skew),
            "inv_quantity_on_hand": numeric_column(rng, n, 0, 1000, integer=True),
        },
        fks=[
            ForeignKey("inv_date_sk", "date_dim", "d_date_sk"),
            ForeignKey("inv_item_sk", "item", "i_item_sk"),
            ForeignKey("inv_warehouse_sk", "warehouse", "w_warehouse_sk"),
        ],
    )
    return counts


# ---------------------------------------------------------------------------
# Query set
# ---------------------------------------------------------------------------
def _star(number: int, fact: str, prefix: str, dims: tuple, fact_filter=None) -> QuerySpec:
    """A star join of ``fact`` against a list of ``(alias, table, fk_col, pk_col, filter)`` dims."""
    relations = [RelationRef("f", fact, fact_filter)]
    joins = []
    for alias, table, fk_col, pk_col, filt in dims:
        relations.append(RelationRef(alias, table, filt))
        joins.append(JoinCondition("f", fk_col, alias, pk_col))
    return QuerySpec(name=f"tpcds_q{number}", relations=tuple(relations), joins=tuple(joins))


def _d(alias: str, table: str, fk: str, pk: str, filt=None):
    return (alias, table, fk, pk, filt)


def _build_queries() -> Dict[int, QuerySpec]:
    queries: Dict[int, QuerySpec] = {}

    # --- simple star / snowflake (acyclic) queries -------------------------
    queries[3] = _star(3, "store_sales", "ss", (
        _d("d", "date_dim", "ss_sold_date_sk", "d_date_sk", eq("d_moy", 11)),
        _d("i", "item", "ss_item_sk", "i_item_sk", eq("i_manufact_id", 50)),
    ))
    queries[7] = _star(7, "store_sales", "ss", (
        _d("cd", "customer_demographics", "ss_cdemo_sk", "cd_demo_sk", eq("cd_gender", "M") & eq("cd_marital_status", "S")),
        _d("d", "date_dim", "ss_sold_date_sk", "d_date_sk", eq("d_year", 2000)),
        _d("i", "item", "ss_item_sk", "i_item_sk"),
        _d("p", "promotion", "ss_promo_sk", "p_promo_sk", eq("p_channel_email", "N")),
    ))
    queries[12] = _star(12, "web_sales", "ws", (
        _d("i", "item", "ws_item_sk", "i_item_sk", isin("i_category", ["Sports", "Books", "Home"])),
        _d("d", "date_dim", "ws_sold_date_sk", "d_date_sk", between("d_date_sk", 200, 230)),
    ))
    queries[15] = QuerySpec(
        name="tpcds_q15",
        relations=(
            RelationRef("cs", "catalog_sales"),
            RelationRef("c", "customer"),
            RelationRef("ca", "customer_address", isin("ca_state", ["CA", "GA", "TX"])),
            RelationRef("d", "date_dim", eq("d_qoy", 2) & eq("d_year", 2001)),
        ),
        joins=(
            JoinCondition("cs", "cs_customer_sk", "c", "c_customer_sk"),
            JoinCondition("c", "c_current_addr_sk", "ca", "ca_address_sk"),
            JoinCondition("cs", "cs_sold_date_sk", "d", "d_date_sk"),
        ),
    )
    queries[17] = QuerySpec(
        name="tpcds_q17",
        relations=(
            RelationRef("ss", "store_sales"),
            RelationRef("sr", "store_returns"),
            RelationRef("cs", "catalog_sales"),
            RelationRef("d1", "date_dim", eq("d_qoy", 1)),
            RelationRef("d2", "date_dim"),
            RelationRef("d3", "date_dim"),
            RelationRef("s", "store"),
            RelationRef("i", "item"),
        ),
        joins=(
            JoinCondition("ss", "ss_sold_date_sk", "d1", "d_date_sk"),
            JoinCondition("ss", "ss_item_sk", "i", "i_item_sk"),
            JoinCondition("ss", "ss_store_sk", "s", "s_store_sk"),
            JoinCondition("sr", "sr_item_sk", "ss", "ss_item_sk"),
            JoinCondition("sr", "sr_ticket_number", "ss", "ss_ticket_number"),
            JoinCondition("sr", "sr_returned_date_sk", "d2", "d_date_sk"),
            JoinCondition("cs", "cs_item_sk", "sr", "sr_item_sk"),
            JoinCondition("cs", "cs_sold_date_sk", "d3", "d_date_sk"),
        ),
    )
    queries[18] = _star(18, "catalog_sales", "cs", (
        _d("cd", "customer_demographics", "cs_cdemo_sk", "cd_demo_sk", eq("cd_gender", "F") & eq("cd_education_status", "College")),
        _d("d", "date_dim", "cs_sold_date_sk", "d_date_sk", eq("d_year", 1998)),
        _d("i", "item", "cs_item_sk", "i_item_sk"),
        _d("c", "customer", "cs_customer_sk", "c_customer_sk"),
    ))
    queries[20] = _star(20, "catalog_sales", "cs", (
        _d("i", "item", "cs_item_sk", "i_item_sk", isin("i_category", ["Jewelry", "Men", "Shoes"])),
        _d("d", "date_dim", "cs_sold_date_sk", "d_date_sk", between("d_date_sk", 300, 330)),
    ))
    queries[25] = QuerySpec(
        name="tpcds_q25",
        relations=(
            RelationRef("ss", "store_sales"),
            RelationRef("sr", "store_returns"),
            RelationRef("cs", "catalog_sales"),
            RelationRef("d1", "date_dim", eq("d_moy", 4) & eq("d_year", 2000)),
            RelationRef("d2", "date_dim", between("d_moy", 4, 10)),
            RelationRef("s", "store"),
            RelationRef("i", "item"),
        ),
        joins=(
            JoinCondition("ss", "ss_sold_date_sk", "d1", "d_date_sk"),
            JoinCondition("ss", "ss_item_sk", "i", "i_item_sk"),
            JoinCondition("ss", "ss_store_sk", "s", "s_store_sk"),
            JoinCondition("sr", "sr_item_sk", "ss", "ss_item_sk"),
            JoinCondition("sr", "sr_ticket_number", "ss", "ss_ticket_number"),
            JoinCondition("cs", "cs_item_sk", "sr", "sr_item_sk"),
            JoinCondition("cs", "cs_sold_date_sk", "d2", "d_date_sk"),
        ),
    )
    queries[26] = _star(26, "catalog_sales", "cs", (
        _d("cd", "customer_demographics", "cs_cdemo_sk", "cd_demo_sk", eq("cd_marital_status", "M")),
        _d("d", "date_dim", "cs_sold_date_sk", "d_date_sk", eq("d_year", 2000)),
        _d("i", "item", "cs_item_sk", "i_item_sk"),
        _d("p", "promotion", "cs_promo_sk", "p_promo_sk", eq("p_channel_event", "N")),
    ))
    queries[27] = _star(27, "store_sales", "ss", (
        _d("cd", "customer_demographics", "ss_cdemo_sk", "cd_demo_sk", eq("cd_gender", "F")),
        _d("d", "date_dim", "ss_sold_date_sk", "d_date_sk", eq("d_year", 1999)),
        _d("s", "store", "ss_store_sk", "s_store_sk", isin("s_state", ["TN", "GA"])),
        _d("i", "item", "ss_item_sk", "i_item_sk"),
    ))
    queries[33] = _star(33, "store_sales", "ss", (
        _d("i", "item", "ss_item_sk", "i_item_sk", eq("i_category", "Electronics")),
        _d("d", "date_dim", "ss_sold_date_sk", "d_date_sk", eq("d_moy", 5)),
        _d("ca", "customer_address", "ss_addr_sk", "ca_address_sk", eq("ca_gmt_offset", -5)),
    ))
    queries[34] = QuerySpec(
        name="tpcds_q34",
        relations=(
            RelationRef("ss", "store_sales"),
            RelationRef("d", "date_dim", between("d_dom", 1, 3)),
            RelationRef("s", "store", isin("s_state", ["TN", "GA", "SC"])),
            RelationRef("hd", "household_demographics", gt("hd_vehicle_count", 1)),
            RelationRef("c", "customer"),
        ),
        joins=(
            JoinCondition("ss", "ss_sold_date_sk", "d", "d_date_sk"),
            JoinCondition("ss", "ss_store_sk", "s", "s_store_sk"),
            JoinCondition("ss", "ss_hdemo_sk", "hd", "hd_demo_sk"),
            JoinCondition("ss", "ss_customer_sk", "c", "c_customer_sk"),
        ),
    )
    queries[37] = _star(37, "catalog_sales", "cs", (
        _d("i", "item", "cs_item_sk", "i_item_sk", between("i_current_price", 20.0, 50.0)),
        _d("d", "date_dim", "cs_sold_date_sk", "d_date_sk", between("d_date_sk", 500, 560)),
    ))
    queries[42] = _star(42, "store_sales", "ss", (
        _d("d", "date_dim", "ss_sold_date_sk", "d_date_sk", eq("d_moy", 12) & eq("d_year", 2000)),
        _d("i", "item", "ss_item_sk", "i_item_sk", eq("i_category", "Books")),
    ))
    queries[43] = _star(43, "store_sales", "ss", (
        _d("d", "date_dim", "ss_sold_date_sk", "d_date_sk", eq("d_year", 2000)),
        _d("s", "store", "ss_store_sk", "s_store_sk", eq("s_gmt_offset", -5)),
    ))
    queries[45] = QuerySpec(
        name="tpcds_q45",
        relations=(
            RelationRef("ws", "web_sales"),
            RelationRef("c", "customer"),
            RelationRef("ca", "customer_address"),
            RelationRef("i", "item", lt("i_item_sk", 100)),
            RelationRef("d", "date_dim", eq("d_qoy", 2) & eq("d_year", 2001)),
        ),
        joins=(
            JoinCondition("ws", "ws_customer_sk", "c", "c_customer_sk"),
            JoinCondition("c", "c_current_addr_sk", "ca", "ca_address_sk"),
            JoinCondition("ws", "ws_item_sk", "i", "i_item_sk"),
            JoinCondition("ws", "ws_sold_date_sk", "d", "d_date_sk"),
        ),
    )
    queries[50] = QuerySpec(
        name="tpcds_q50",
        relations=(
            RelationRef("ss", "store_sales"),
            RelationRef("sr", "store_returns"),
            RelationRef("s", "store"),
            RelationRef("d1", "date_dim"),
            RelationRef("d2", "date_dim", eq("d_year", 2001) & eq("d_moy", 8)),
        ),
        joins=(
            JoinCondition("ss", "ss_ticket_number", "sr", "sr_ticket_number"),
            JoinCondition("ss", "ss_item_sk", "sr", "sr_item_sk"),
            JoinCondition("ss", "ss_customer_sk", "sr", "sr_customer_sk"),
            JoinCondition("ss", "ss_sold_date_sk", "d1", "d_date_sk"),
            JoinCondition("sr", "sr_returned_date_sk", "d2", "d_date_sk"),
            JoinCondition("ss", "ss_store_sk", "s", "s_store_sk"),
        ),
    )
    queries[52] = _star(52, "store_sales", "ss", (
        _d("d", "date_dim", "ss_sold_date_sk", "d_date_sk", eq("d_moy", 11) & eq("d_year", 2000)),
        _d("i", "item", "ss_item_sk", "i_item_sk", eq("i_manufact_id", 10)),
    ))
    queries[55] = _star(55, "store_sales", "ss", (
        _d("d", "date_dim", "ss_sold_date_sk", "d_date_sk", eq("d_moy", 11)),
        _d("i", "item", "ss_item_sk", "i_item_sk", eq("i_manufact_id", 28)),
    ))
    queries[62] = _star(62, "web_sales", "ws", (
        _d("d", "date_dim", "ws_ship_date_sk", "d_date_sk", between("d_date_sk", 600, 660)),
        _d("wsite", "web_site", "ws_web_site_sk", "web_site_sk"),
        _d("wp", "web_page", "ws_web_page_sk", "wp_web_page_sk"),
    ))
    queries[65] = QuerySpec(
        name="tpcds_q65",
        relations=(
            RelationRef("ss", "store_sales"),
            RelationRef("d", "date_dim", between("d_week_seq", 20, 40)),
            RelationRef("s", "store"),
            RelationRef("i", "item"),
        ),
        joins=(
            JoinCondition("ss", "ss_sold_date_sk", "d", "d_date_sk"),
            JoinCondition("ss", "ss_store_sk", "s", "s_store_sk"),
            JoinCondition("ss", "ss_item_sk", "i", "i_item_sk"),
        ),
    )
    queries[79] = QuerySpec(
        name="tpcds_q79",
        relations=(
            RelationRef("ss", "store_sales"),
            RelationRef("d", "date_dim", eq("d_year", 1999)),
            RelationRef("s", "store", gt("s_number_employees", 250)),
            RelationRef("hd", "household_demographics", gt("hd_dep_count", 5)),
            RelationRef("c", "customer"),
        ),
        joins=(
            JoinCondition("ss", "ss_sold_date_sk", "d", "d_date_sk"),
            JoinCondition("ss", "ss_store_sk", "s", "s_store_sk"),
            JoinCondition("ss", "ss_hdemo_sk", "hd", "hd_demo_sk"),
            JoinCondition("ss", "ss_customer_sk", "c", "c_customer_sk"),
        ),
    )
    queries[82] = QuerySpec(
        name="tpcds_q82",
        relations=(
            RelationRef("inv", "inventory", lt("inv_quantity_on_hand", 500)),
            RelationRef("i", "item", between("i_current_price", 30.0, 60.0)),
            RelationRef("d", "date_dim", between("d_date_sk", 700, 760)),
            RelationRef("ss", "store_sales"),
        ),
        joins=(
            JoinCondition("inv", "inv_item_sk", "i", "i_item_sk"),
            JoinCondition("inv", "inv_date_sk", "d", "d_date_sk"),
            JoinCondition("ss", "ss_item_sk", "i", "i_item_sk"),
        ),
    )
    queries[91] = QuerySpec(
        name="tpcds_q91",
        relations=(
            RelationRef("cr", "catalog_returns"),
            RelationRef("d", "date_dim", eq("d_year", 1998) & eq("d_moy", 11)),
            RelationRef("c", "customer"),
            RelationRef("cd", "customer_demographics", eq("cd_marital_status", "M")),
            RelationRef("ca", "customer_address", eq("ca_gmt_offset", -7)),
        ),
        joins=(
            JoinCondition("cr", "cr_returned_date_sk", "d", "d_date_sk"),
            JoinCondition("cr", "cr_customer_sk", "c", "c_customer_sk"),
            JoinCondition("c", "c_current_cdemo_sk", "cd", "cd_demo_sk"),
            JoinCondition("c", "c_current_addr_sk", "ca", "ca_address_sk"),
        ),
    )
    queries[96] = _star(96, "store_sales", "ss", (
        _d("t", "time_dim", "ss_sold_time_sk", "t_time_sk", eq("t_hour", 20)),
        _d("hd", "household_demographics", "ss_hdemo_sk", "hd_demo_sk", eq("hd_dep_count", 7)),
        _d("s", "store", "ss_store_sk", "s_store_sk"),
    ))
    queries[98] = _star(98, "store_sales", "ss", (
        _d("i", "item", "ss_item_sk", "i_item_sk", isin("i_category", ["Music", "Home", "Shoes"])),
        _d("d", "date_dim", "ss_sold_date_sk", "d_date_sk", between("d_date_sk", 100, 130)),
    ))
    queries[99] = _star(99, "catalog_sales", "cs", (
        _d("d", "date_dim", "cs_ship_date_sk", "d_date_sk", between("d_date_sk", 400, 460)),
        _d("w", "warehouse", "cs_warehouse_sk", "w_warehouse_sk"),
        _d("sm", "ship_mode", "cs_ship_mode_sk", "sm_ship_mode_sk"),
        _d("cc", "call_center", "cs_call_center_sk", "cc_call_center_sk"),
    ))

    # --- queries the paper singles out --------------------------------------
    # Q13 / Q48: OR-of-AND predicates across relations (cannot be pushed down).
    queries[13] = QuerySpec(
        name="tpcds_q13",
        relations=(
            RelationRef("ss", "store_sales"),
            RelationRef("s", "store"),
            RelationRef("cd", "customer_demographics"),
            RelationRef("hd", "household_demographics"),
            RelationRef("ca", "customer_address", eq("ca_country", "United States")),
            RelationRef("d", "date_dim", eq("d_year", 2001)),
        ),
        joins=(
            JoinCondition("ss", "ss_store_sk", "s", "s_store_sk"),
            JoinCondition("ss", "ss_cdemo_sk", "cd", "cd_demo_sk"),
            JoinCondition("ss", "ss_hdemo_sk", "hd", "hd_demo_sk"),
            JoinCondition("ss", "ss_addr_sk", "ca", "ca_address_sk"),
            JoinCondition("ss", "ss_sold_date_sk", "d", "d_date_sk"),
        ),
        post_join_predicates=(
            PostJoinPredicate(
                disjuncts=(
                    (QualifiedComparison("cd", "cd_marital_status", "==", "M"),
                     QualifiedComparison("hd", "hd_dep_count", "==", 3)),
                    (QualifiedComparison("cd", "cd_marital_status", "==", "S"),
                     QualifiedComparison("hd", "hd_dep_count", "==", 1)),
                ),
            ),
        ),
    )
    queries[48] = QuerySpec(
        name="tpcds_q48",
        relations=(
            RelationRef("ss", "store_sales"),
            RelationRef("s", "store"),
            RelationRef("cd", "customer_demographics"),
            RelationRef("ca", "customer_address", eq("ca_country", "United States")),
            RelationRef("d", "date_dim", eq("d_year", 2000)),
        ),
        joins=(
            JoinCondition("ss", "ss_store_sk", "s", "s_store_sk"),
            JoinCondition("ss", "ss_cdemo_sk", "cd", "cd_demo_sk"),
            JoinCondition("ss", "ss_addr_sk", "ca", "ca_address_sk"),
            JoinCondition("ss", "ss_sold_date_sk", "d", "d_date_sk"),
        ),
        post_join_predicates=(
            PostJoinPredicate(
                disjuncts=(
                    (QualifiedComparison("cd", "cd_education_status", "==", "College"),
                     QualifiedComparison("ss", "ss_sales_price", "<", 100.0)),
                    (QualifiedComparison("cd", "cd_education_status", "==", "Primary"),
                     QualifiedComparison("ss", "ss_sales_price", ">", 150.0)),
                ),
            ),
        ),
    )
    # Q29: acyclic but not γ-acyclic (composite-key join between ss and sr).
    queries[29] = QuerySpec(
        name="tpcds_q29",
        relations=(
            RelationRef("ss", "store_sales"),
            RelationRef("sr", "store_returns"),
            RelationRef("cs", "catalog_sales"),
            RelationRef("d1", "date_dim", eq("d_moy", 9)),
            RelationRef("d2", "date_dim"),
            RelationRef("d3", "date_dim"),
            RelationRef("s", "store"),
            RelationRef("i", "item"),
        ),
        joins=(
            JoinCondition("ss", "ss_sold_date_sk", "d1", "d_date_sk"),
            JoinCondition("ss", "ss_item_sk", "i", "i_item_sk"),
            JoinCondition("ss", "ss_store_sk", "s", "s_store_sk"),
            JoinCondition("sr", "sr_item_sk", "ss", "ss_item_sk"),
            JoinCondition("sr", "sr_ticket_number", "ss", "ss_ticket_number"),
            JoinCondition("sr", "sr_returned_date_sk", "d2", "d_date_sk"),
            JoinCondition("cs", "cs_item_sk", "sr", "sr_item_sk"),
            JoinCondition("cs", "cs_sold_date_sk", "d3", "d_date_sk"),
        ),
    )
    # Q54 / Q83: queries where the original PT's Small2Large transfer under-reduces.
    queries[54] = QuerySpec(
        name="tpcds_q54",
        relations=(
            RelationRef("cs", "catalog_sales"),
            RelationRef("i", "item", eq("i_category", "Women")),
            RelationRef("d", "date_dim", eq("d_moy", 12)),
            RelationRef("c", "customer"),
            RelationRef("ca", "customer_address", isin("ca_state", ["CA", "TX"])),
            RelationRef("ss", "store_sales"),
        ),
        joins=(
            JoinCondition("cs", "cs_item_sk", "i", "i_item_sk"),
            JoinCondition("cs", "cs_sold_date_sk", "d", "d_date_sk"),
            JoinCondition("cs", "cs_customer_sk", "c", "c_customer_sk"),
            JoinCondition("c", "c_current_addr_sk", "ca", "ca_address_sk"),
            JoinCondition("ss", "ss_customer_sk", "c", "c_customer_sk"),
        ),
    )
    queries[83] = QuerySpec(
        name="tpcds_q83",
        relations=(
            RelationRef("sr", "store_returns"),
            RelationRef("cr", "catalog_returns"),
            RelationRef("wr", "web_returns"),
            RelationRef("i", "item"),
            RelationRef("d", "date_dim", eq("d_moy", 7)),
        ),
        joins=(
            JoinCondition("sr", "sr_item_sk", "i", "i_item_sk"),
            JoinCondition("cr", "cr_item_sk", "i", "i_item_sk"),
            JoinCondition("wr", "wr_item_sk", "i", "i_item_sk"),
            JoinCondition("sr", "sr_returned_date_sk", "d", "d_date_sk"),
        ),
    )
    # Q16 / Q61 / Q69: queries whose result is (nearly) empty at SF100 — RPT
    # pays for extra scans relative to the baseline's early-out.
    queries[16] = _star(16, "catalog_sales", "cs", (
        _d("d", "date_dim", "cs_ship_date_sk", "d_date_sk", between("d_date_sk", 900, 960)),
        _d("ca", "customer_address", "cs_addr_sk", "ca_address_sk", eq("ca_state", "GA")),
        _d("cc", "call_center", "cs_call_center_sk", "cc_call_center_sk", eq("cc_county", "County0")),
    ))
    queries[61] = _star(61, "store_sales", "ss", (
        _d("p", "promotion", "ss_promo_sk", "p_promo_sk", eq("p_channel_email", "Y")),
        _d("s", "store", "ss_store_sk", "s_store_sk", eq("s_gmt_offset", -7)),
        _d("d", "date_dim", "ss_sold_date_sk", "d_date_sk", eq("d_year", 1998) & eq("d_moy", 11)),
        _d("c", "customer", "ss_customer_sk", "c_customer_sk"),
        _d("i", "item", "ss_item_sk", "i_item_sk", eq("i_category", "Jewelry")),
    ))
    queries[69] = QuerySpec(
        name="tpcds_q69",
        relations=(
            RelationRef("c", "customer"),
            RelationRef("ca", "customer_address", isin("ca_state", ["KY", "GA", "NM"])),
            RelationRef("cd", "customer_demographics"),
            RelationRef("ss", "store_sales"),
            RelationRef("d", "date_dim", eq("d_year", 2001) & between("d_moy", 4, 6)),
        ),
        joins=(
            JoinCondition("c", "c_current_addr_sk", "ca", "ca_address_sk"),
            JoinCondition("c", "c_current_cdemo_sk", "cd", "cd_demo_sk"),
            JoinCondition("ss", "ss_customer_sk", "c", "c_customer_sk"),
            JoinCondition("ss", "ss_sold_date_sk", "d", "d_date_sk"),
        ),
    )

    # --- cyclic queries (19, 24, 46, 64, 68, 72, 85) ------------------------
    queries[19] = QuerySpec(
        name="tpcds_q19",
        relations=(
            RelationRef("ss", "store_sales"),
            RelationRef("d", "date_dim", eq("d_moy", 11) & eq("d_year", 1999)),
            RelationRef("i", "item", eq("i_manufact_id", 7)),
            RelationRef("c", "customer"),
            RelationRef("ca", "customer_address"),
            RelationRef("s", "store"),
        ),
        joins=(
            JoinCondition("ss", "ss_sold_date_sk", "d", "d_date_sk"),
            JoinCondition("ss", "ss_item_sk", "i", "i_item_sk"),
            JoinCondition("ss", "ss_customer_sk", "c", "c_customer_sk"),
            JoinCondition("c", "c_current_addr_sk", "ca", "ca_address_sk"),
            JoinCondition("ss", "ss_store_sk", "s", "s_store_sk"),
            # The zip comparison between the customer's address and the store
            # closes the cycle (modelled as an equi-join on zip).
            JoinCondition("ca", "ca_zip", "s", "s_zip"),
        ),
    )
    queries[24] = QuerySpec(
        name="tpcds_q24",
        relations=(
            RelationRef("ss", "store_sales"),
            RelationRef("sr", "store_returns"),
            RelationRef("s", "store"),
            RelationRef("i", "item", eq("i_color", "red")),
            RelationRef("c", "customer"),
            RelationRef("ca", "customer_address"),
        ),
        joins=(
            JoinCondition("ss", "ss_ticket_number", "sr", "sr_ticket_number"),
            JoinCondition("ss", "ss_item_sk", "sr", "sr_item_sk"),
            JoinCondition("ss", "ss_store_sk", "s", "s_store_sk"),
            JoinCondition("ss", "ss_item_sk", "i", "i_item_sk"),
            JoinCondition("ss", "ss_customer_sk", "c", "c_customer_sk"),
            JoinCondition("c", "c_current_addr_sk", "ca", "ca_address_sk"),
            JoinCondition("s", "s_zip", "ca", "ca_zip"),
        ),
    )
    queries[46] = QuerySpec(
        name="tpcds_q46",
        relations=(
            RelationRef("ss", "store_sales"),
            RelationRef("d", "date_dim", isin("d_dom", [1, 2, 3])),
            RelationRef("s", "store", isin("s_city", ["City0", "City1"])),
            RelationRef("hd", "household_demographics", gt("hd_dep_count", 3)),
            RelationRef("ca1", "customer_address"),
            RelationRef("c", "customer"),
            RelationRef("ca2", "customer_address"),
        ),
        joins=(
            JoinCondition("ss", "ss_sold_date_sk", "d", "d_date_sk"),
            JoinCondition("ss", "ss_store_sk", "s", "s_store_sk"),
            JoinCondition("ss", "ss_hdemo_sk", "hd", "hd_demo_sk"),
            JoinCondition("ss", "ss_addr_sk", "ca1", "ca_address_sk"),
            JoinCondition("ss", "ss_customer_sk", "c", "c_customer_sk"),
            JoinCondition("c", "c_current_addr_sk", "ca2", "ca_address_sk"),
            JoinCondition("ca1", "ca_city", "ca2", "ca_city"),
        ),
    )
    queries[64] = QuerySpec(
        name="tpcds_q64",
        relations=(
            RelationRef("ss", "store_sales"),
            RelationRef("sr", "store_returns"),
            RelationRef("cs", "catalog_sales"),
            RelationRef("d1", "date_dim", eq("d_year", 1999)),
            RelationRef("s", "store"),
            RelationRef("c", "customer"),
            RelationRef("cd1", "customer_demographics"),
            RelationRef("cd2", "customer_demographics"),
            RelationRef("ca1", "customer_address"),
            RelationRef("ca2", "customer_address"),
            RelationRef("i", "item", isin("i_color", ["purple", "orange", "pink"])),
        ),
        joins=(
            JoinCondition("ss", "ss_item_sk", "i", "i_item_sk"),
            JoinCondition("ss", "ss_ticket_number", "sr", "sr_ticket_number"),
            JoinCondition("ss", "ss_item_sk", "sr", "sr_item_sk"),
            JoinCondition("cs", "cs_item_sk", "ss", "ss_item_sk"),
            JoinCondition("ss", "ss_sold_date_sk", "d1", "d_date_sk"),
            JoinCondition("ss", "ss_store_sk", "s", "s_store_sk"),
            JoinCondition("ss", "ss_customer_sk", "c", "c_customer_sk"),
            JoinCondition("ss", "ss_cdemo_sk", "cd1", "cd_demo_sk"),
            JoinCondition("c", "c_current_cdemo_sk", "cd2", "cd_demo_sk"),
            JoinCondition("ss", "ss_addr_sk", "ca1", "ca_address_sk"),
            JoinCondition("c", "c_current_addr_sk", "ca2", "ca_address_sk"),
            JoinCondition("cd1", "cd_marital_status", "cd2", "cd_marital_status"),
        ),
    )
    queries[68] = QuerySpec(
        name="tpcds_q68",
        relations=(
            RelationRef("ss", "store_sales"),
            RelationRef("d", "date_dim", isin("d_dom", [1, 2])),
            RelationRef("s", "store", isin("s_city", ["City2", "City3"])),
            RelationRef("hd", "household_demographics", gt("hd_dep_count", 4)),
            RelationRef("ca1", "customer_address"),
            RelationRef("c", "customer"),
            RelationRef("ca2", "customer_address"),
        ),
        joins=(
            JoinCondition("ss", "ss_sold_date_sk", "d", "d_date_sk"),
            JoinCondition("ss", "ss_store_sk", "s", "s_store_sk"),
            JoinCondition("ss", "ss_hdemo_sk", "hd", "hd_demo_sk"),
            JoinCondition("ss", "ss_addr_sk", "ca1", "ca_address_sk"),
            JoinCondition("ss", "ss_customer_sk", "c", "c_customer_sk"),
            JoinCondition("c", "c_current_addr_sk", "ca2", "ca_address_sk"),
            JoinCondition("ca1", "ca_city", "ca2", "ca_city"),
        ),
    )
    queries[72] = QuerySpec(
        name="tpcds_q72",
        relations=(
            RelationRef("cs", "catalog_sales"),
            RelationRef("inv", "inventory"),
            RelationRef("w", "warehouse"),
            RelationRef("i", "item"),
            RelationRef("cd", "customer_demographics", eq("cd_marital_status", "D")),
            RelationRef("hd", "household_demographics", eq("hd_buy_potential", ">10000")),
            RelationRef("d1", "date_dim", eq("d_year", 1999)),
            RelationRef("d2", "date_dim"),
        ),
        joins=(
            JoinCondition("cs", "cs_item_sk", "i", "i_item_sk"),
            JoinCondition("inv", "inv_item_sk", "i", "i_item_sk"),
            JoinCondition("inv", "inv_warehouse_sk", "w", "w_warehouse_sk"),
            JoinCondition("cs", "cs_cdemo_sk", "cd", "cd_demo_sk"),
            JoinCondition("cs", "cs_hdemo_sk", "hd", "hd_demo_sk"),
            JoinCondition("cs", "cs_sold_date_sk", "d1", "d_date_sk"),
            JoinCondition("inv", "inv_date_sk", "d2", "d_date_sk"),
            JoinCondition("d1", "d_week_seq", "d2", "d_week_seq"),
        ),
    )
    queries[85] = QuerySpec(
        name="tpcds_q85",
        relations=(
            RelationRef("ws", "web_sales"),
            RelationRef("wr", "web_returns"),
            RelationRef("wp", "web_page"),
            RelationRef("cd1", "customer_demographics"),
            RelationRef("cd2", "customer_demographics"),
            RelationRef("ca", "customer_address", eq("ca_country", "United States")),
            RelationRef("d", "date_dim", eq("d_year", 2000)),
            RelationRef("r", "reason"),
        ),
        joins=(
            JoinCondition("ws", "ws_item_sk", "wr", "wr_item_sk"),
            JoinCondition("ws", "ws_web_page_sk", "wp", "wp_web_page_sk"),
            JoinCondition("wr", "wr_refunded_cdemo_sk", "cd1", "cd_demo_sk"),
            JoinCondition("wr", "wr_returning_cdemo_sk", "cd2", "cd_demo_sk"),
            JoinCondition("wr", "wr_refunded_addr_sk", "ca", "ca_address_sk"),
            JoinCondition("ws", "ws_sold_date_sk", "d", "d_date_sk"),
            JoinCondition("wr", "wr_reason_sk", "r", "r_reason_sk"),
            JoinCondition("cd1", "cd_marital_status", "cd2", "cd_marital_status"),
        ),
    )
    return queries


_QUERIES = None


def _queries() -> Dict[int, QuerySpec]:
    global _QUERIES
    if _QUERIES is None:
        _QUERIES = _build_queries()
    return _QUERIES


#: Queries the paper marks as cyclic in TPC-DS.
CYCLIC_QUERIES = (19, 24, 46, 64, 68, 72, 85)

#: Queries with larger variance discussed in §5.1.1 (OR-predicates / not γ-acyclic).
SPECIAL_CASE_QUERIES = (13, 29, 48)

#: Queries where the original PT under-reduces (Figure 8).
FIGURE8_QUERIES = (54, 83)


def query(number: int) -> QuerySpec:
    """Return the QuerySpec for TPC-DS query ``number`` (reproduced subset)."""
    queries = _queries()
    if number not in queries:
        raise WorkloadError(
            f"TPC-DS Q{number} is not part of the reproduced subset "
            f"(available: {sorted(queries)})"
        )
    return queries[number]


def all_queries() -> Dict[str, QuerySpec]:
    """All reproduced TPC-DS queries, keyed by name."""
    return {f"q{n}": q for n, q in sorted(_queries().items())}


def query_numbers() -> tuple[int, ...]:
    """All reproduced query numbers."""
    return tuple(sorted(_queries()))
