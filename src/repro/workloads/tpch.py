"""TPC-H workload: synthetic schema/data generator and the query join structures.

The generator reproduces the full eight-table TPC-H schema (region, nation,
supplier, customer, part, partsupp, orders, lineitem) with the standard
key/foreign-key relationships and fan-outs (4 lineitems per order, one
partsupp per (part, supplier) pair sampled, etc.), scaled down to a size a
pure-Python engine can execute thousands of times for the robustness sweeps.

The query set covers every TPC-H query with at least two joins — the same
set the paper evaluates (its Figure 6a shows Q2, 3, 5, 7, 8, 9, 10, 11, 18,
21; the appendix covers Q2–Q22 except the single-table Q1/Q6).  Each
:class:`~repro.query.QuerySpec` mirrors the original query's join graph and
the selective filters that matter for join ordering; aggregates are reduced
to a ``COUNT(*)``-style measurement (standard practice in join-ordering
studies, where the aggregate does not affect join work).

Notably, Q5 and Q21 contain the ``customer.nationkey = supplier.nationkey``
style edges that make them **cyclic** — the paper flags Q5 in red in its
robustness plots; the reproduction preserves that character.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.engine.database import Database
from repro.errors import WorkloadError
from repro.expr import between, eq, ge, gt, isin, le, lt, starts_with
from repro.query import JoinCondition, QuerySpec, RelationRef
from repro.storage.table import ForeignKey
from repro.workloads.generator import (
    WorkloadScale,
    categorical_column,
    date_column,
    foreign_keys,
    names_column,
    numeric_column,
    primary_keys,
)

#: Base cardinalities at ``scale=1.0`` (≈ TPC-H SF 0.002, preserving ratios).
BASE_ROWS = {
    "region": 5,
    "nation": 25,
    "supplier": 100,
    "customer": 1_500,
    "part": 2_000,
    "partsupp": 8_000,
    "orders": 15_000,
    "lineitem": 60_000,
}

_SEGMENTS = ["AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"]
_PRIORITIES = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"]
_SHIPMODES = ["AIR", "FOB", "MAIL", "RAIL", "REG AIR", "SHIP", "TRUCK"]
_TYPES = ["ECONOMY", "LARGE", "MEDIUM", "PROMO", "SMALL", "STANDARD"]
_CONTAINERS = ["SM CASE", "SM BOX", "LG CASE", "LG BOX", "MED BAG", "JUMBO PKG"]
_BRANDS = [f"Brand#{i}{j}" for i in range(1, 6) for j in range(1, 6)]
_REGION_NAMES = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]
_RETURN_FLAGS = ["A", "N", "R"]


def load(db: Database, scale: float = 1.0, seed: int = 42, replace: bool = False) -> Dict[str, int]:
    """Generate and register the TPC-H tables.

    Returns a mapping of table name to generated row count.
    """
    ws = WorkloadScale(scale=scale, seed=seed)
    counts: Dict[str, int] = {name: ws.rows(base) for name, base in BASE_ROWS.items()}
    counts["region"] = 5
    counts["nation"] = 25

    # region ---------------------------------------------------------------
    db.register_dataframe(
        "region",
        {
            "r_regionkey": primary_keys(counts["region"]),
            "r_name": _REGION_NAMES[: counts["region"]],
        },
        primary_key=["r_regionkey"],
        replace=replace,
    )

    # nation ---------------------------------------------------------------
    rng = ws.rng("nation")
    db.register_dataframe(
        "nation",
        {
            "n_nationkey": primary_keys(counts["nation"]),
            "n_name": names_column("NATION", counts["nation"]),
            "n_regionkey": foreign_keys(rng, counts["nation"], counts["region"]),
        },
        primary_key=["n_nationkey"],
        foreign_keys=[ForeignKey("n_regionkey", "region", "r_regionkey")],
        replace=replace,
    )

    # supplier ---------------------------------------------------------------
    rng = ws.rng("supplier")
    db.register_dataframe(
        "supplier",
        {
            "s_suppkey": primary_keys(counts["supplier"]),
            "s_name": names_column("Supplier", counts["supplier"]),
            "s_nationkey": foreign_keys(rng, counts["supplier"], counts["nation"]),
            "s_acctbal": numeric_column(rng, counts["supplier"], -999.0, 9999.0),
            "s_comment_has_complaint": rng.integers(0, 2, counts["supplier"]),
        },
        primary_key=["s_suppkey"],
        foreign_keys=[ForeignKey("s_nationkey", "nation", "n_nationkey")],
        replace=replace,
    )

    # customer ---------------------------------------------------------------
    rng = ws.rng("customer")
    db.register_dataframe(
        "customer",
        {
            "c_custkey": primary_keys(counts["customer"]),
            "c_name": names_column("Customer", counts["customer"]),
            "c_nationkey": foreign_keys(rng, counts["customer"], counts["nation"]),
            "c_mktsegment": categorical_column(rng, counts["customer"], _SEGMENTS),
            "c_acctbal": numeric_column(rng, counts["customer"], -999.0, 9999.0),
        },
        primary_key=["c_custkey"],
        foreign_keys=[ForeignKey("c_nationkey", "nation", "n_nationkey")],
        replace=replace,
    )

    # part ---------------------------------------------------------------
    rng = ws.rng("part")
    db.register_dataframe(
        "part",
        {
            "p_partkey": primary_keys(counts["part"]),
            "p_name": names_column("part", counts["part"]),
            "p_brand": categorical_column(rng, counts["part"], _BRANDS),
            "p_type": categorical_column(rng, counts["part"], _TYPES),
            "p_size": numeric_column(rng, counts["part"], 1, 50, integer=True),
            "p_container": categorical_column(rng, counts["part"], _CONTAINERS),
            "p_retailprice": numeric_column(rng, counts["part"], 900.0, 2000.0),
        },
        primary_key=["p_partkey"],
        replace=replace,
    )

    # partsupp ---------------------------------------------------------------
    rng = ws.rng("partsupp")
    db.register_dataframe(
        "partsupp",
        {
            "ps_partkey": foreign_keys(rng, counts["partsupp"], counts["part"]),
            "ps_suppkey": foreign_keys(rng, counts["partsupp"], counts["supplier"]),
            "ps_availqty": numeric_column(rng, counts["partsupp"], 1, 9999, integer=True),
            "ps_supplycost": numeric_column(rng, counts["partsupp"], 1.0, 1000.0),
        },
        foreign_keys=[
            ForeignKey("ps_partkey", "part", "p_partkey"),
            ForeignKey("ps_suppkey", "supplier", "s_suppkey"),
        ],
        replace=replace,
    )

    # orders ---------------------------------------------------------------
    rng = ws.rng("orders")
    db.register_dataframe(
        "orders",
        {
            "o_orderkey": primary_keys(counts["orders"]),
            "o_custkey": foreign_keys(rng, counts["orders"], counts["customer"]),
            "o_orderstatus": categorical_column(rng, counts["orders"], ["F", "O", "P"], [0.49, 0.49, 0.02]),
            "o_orderdate": date_column(rng, counts["orders"]),
            "o_orderpriority": categorical_column(rng, counts["orders"], _PRIORITIES),
            "o_totalprice": numeric_column(rng, counts["orders"], 800.0, 500000.0),
        },
        primary_key=["o_orderkey"],
        foreign_keys=[ForeignKey("o_custkey", "customer", "c_custkey")],
        replace=replace,
    )

    # lineitem ---------------------------------------------------------------
    rng = ws.rng("lineitem")
    n_li = counts["lineitem"]
    db.register_dataframe(
        "lineitem",
        {
            "l_orderkey": foreign_keys(rng, n_li, counts["orders"]),
            "l_partkey": foreign_keys(rng, n_li, counts["part"]),
            "l_suppkey": foreign_keys(rng, n_li, counts["supplier"]),
            "l_quantity": numeric_column(rng, n_li, 1, 50, integer=True),
            "l_extendedprice": numeric_column(rng, n_li, 900.0, 100000.0),
            "l_discount": numeric_column(rng, n_li, 0.0, 0.1),
            "l_shipdate": date_column(rng, n_li),
            "l_commitdate": date_column(rng, n_li),
            "l_receiptdate": date_column(rng, n_li),
            "l_returnflag": categorical_column(rng, n_li, _RETURN_FLAGS),
            "l_shipmode": categorical_column(rng, n_li, _SHIPMODES),
        },
        foreign_keys=[
            ForeignKey("l_orderkey", "orders", "o_orderkey"),
            ForeignKey("l_partkey", "part", "p_partkey"),
            ForeignKey("l_suppkey", "supplier", "s_suppkey"),
        ],
        replace=replace,
    )
    return counts


# ---------------------------------------------------------------------------
# Query set
# ---------------------------------------------------------------------------
def _q2() -> QuerySpec:
    """Q2: part / partsupp / supplier / nation / region (minimum-cost supplier)."""
    return QuerySpec(
        name="tpch_q2",
        relations=(
            RelationRef("p", "part", eq("p_size", 15) | eq("p_size", 23)),
            RelationRef("ps", "partsupp"),
            RelationRef("s", "supplier"),
            RelationRef("n", "nation"),
            RelationRef("r", "region", eq("r_name", "EUROPE")),
        ),
        joins=(
            JoinCondition("ps", "ps_partkey", "p", "p_partkey"),
            JoinCondition("ps", "ps_suppkey", "s", "s_suppkey"),
            JoinCondition("s", "s_nationkey", "n", "n_nationkey"),
            JoinCondition("n", "n_regionkey", "r", "r_regionkey"),
        ),
    )


def _q3() -> QuerySpec:
    """Q3: customer / orders / lineitem (shipping priority)."""
    return QuerySpec(
        name="tpch_q3",
        relations=(
            RelationRef("c", "customer", eq("c_mktsegment", "BUILDING")),
            RelationRef("o", "orders", lt("o_orderdate", 1200)),
            RelationRef("l", "lineitem", gt("l_shipdate", 1200)),
        ),
        joins=(
            JoinCondition("o", "o_custkey", "c", "c_custkey"),
            JoinCondition("l", "l_orderkey", "o", "o_orderkey"),
        ),
    )


def _q4() -> QuerySpec:
    """Q4: orders / lineitem (order priority checking)."""
    return QuerySpec(
        name="tpch_q4",
        relations=(
            RelationRef("o", "orders", between("o_orderdate", 1000, 1090)),
            RelationRef("l", "lineitem"),
        ),
        joins=(JoinCondition("l", "l_orderkey", "o", "o_orderkey"),),
    )


def _q5() -> QuerySpec:
    """Q5: customer / orders / lineitem / supplier / nation / region — **cyclic**.

    The ``c_nationkey = s_nationkey`` predicate closes a cycle between the
    customer and supplier sides of the join graph.
    """
    return QuerySpec(
        name="tpch_q5",
        relations=(
            RelationRef("c", "customer"),
            RelationRef("o", "orders", between("o_orderdate", 400, 765)),
            RelationRef("l", "lineitem"),
            RelationRef("s", "supplier"),
            RelationRef("n", "nation"),
            RelationRef("r", "region", eq("r_name", "ASIA")),
        ),
        joins=(
            JoinCondition("o", "o_custkey", "c", "c_custkey"),
            JoinCondition("l", "l_orderkey", "o", "o_orderkey"),
            JoinCondition("l", "l_suppkey", "s", "s_suppkey"),
            JoinCondition("c", "c_nationkey", "s", "s_nationkey"),
            JoinCondition("s", "s_nationkey", "n", "n_nationkey"),
            JoinCondition("n", "n_regionkey", "r", "r_regionkey"),
        ),
    )


def _q7() -> QuerySpec:
    """Q7: supplier / lineitem / orders / customer / nation x2 (volume shipping)."""
    return QuerySpec(
        name="tpch_q7",
        relations=(
            RelationRef("s", "supplier"),
            RelationRef("l", "lineitem", between("l_shipdate", 700, 1430)),
            RelationRef("o", "orders"),
            RelationRef("c", "customer"),
            RelationRef("n1", "nation", isin("n_name", ["NATION#000001", "NATION#000002"])),
            RelationRef("n2", "nation", isin("n_name", ["NATION#000003", "NATION#000004"])),
        ),
        joins=(
            JoinCondition("l", "l_suppkey", "s", "s_suppkey"),
            JoinCondition("l", "l_orderkey", "o", "o_orderkey"),
            JoinCondition("o", "o_custkey", "c", "c_custkey"),
            JoinCondition("s", "s_nationkey", "n1", "n_nationkey"),
            JoinCondition("c", "c_nationkey", "n2", "n_nationkey"),
        ),
    )


def _q8() -> QuerySpec:
    """Q8: part / lineitem / supplier / orders / customer / nation x2 / region."""
    return QuerySpec(
        name="tpch_q8",
        relations=(
            RelationRef("p", "part", eq("p_type", "ECONOMY")),
            RelationRef("l", "lineitem"),
            RelationRef("s", "supplier"),
            RelationRef("o", "orders", between("o_orderdate", 365, 1095)),
            RelationRef("c", "customer"),
            RelationRef("n1", "nation"),
            RelationRef("n2", "nation"),
            RelationRef("r", "region", eq("r_name", "AMERICA")),
        ),
        joins=(
            JoinCondition("l", "l_partkey", "p", "p_partkey"),
            JoinCondition("l", "l_suppkey", "s", "s_suppkey"),
            JoinCondition("l", "l_orderkey", "o", "o_orderkey"),
            JoinCondition("o", "o_custkey", "c", "c_custkey"),
            JoinCondition("c", "c_nationkey", "n1", "n_nationkey"),
            JoinCondition("n1", "n_regionkey", "r", "r_regionkey"),
            JoinCondition("s", "s_nationkey", "n2", "n_nationkey"),
        ),
    )


def _q9() -> QuerySpec:
    """Q9: part / supplier / lineitem / partsupp / orders / nation (product profit).

    The partsupp edges on *both* partkey and suppkey make this query join two
    relations on a composite key — an acyclic but not γ-acyclic structure.
    """
    return QuerySpec(
        name="tpch_q9",
        relations=(
            RelationRef("p", "part", starts_with("p_name", "part#0000")),
            RelationRef("s", "supplier"),
            RelationRef("l", "lineitem"),
            RelationRef("ps", "partsupp"),
            RelationRef("o", "orders"),
            RelationRef("n", "nation"),
        ),
        joins=(
            JoinCondition("l", "l_partkey", "p", "p_partkey"),
            JoinCondition("l", "l_suppkey", "s", "s_suppkey"),
            JoinCondition("ps", "ps_partkey", "l", "l_partkey"),
            JoinCondition("ps", "ps_suppkey", "l", "l_suppkey"),
            JoinCondition("l", "l_orderkey", "o", "o_orderkey"),
            JoinCondition("s", "s_nationkey", "n", "n_nationkey"),
        ),
    )


def _q10() -> QuerySpec:
    """Q10: customer / orders / lineitem / nation (returned item reporting)."""
    return QuerySpec(
        name="tpch_q10",
        relations=(
            RelationRef("c", "customer"),
            RelationRef("o", "orders", between("o_orderdate", 800, 890)),
            RelationRef("l", "lineitem", eq("l_returnflag", "R")),
            RelationRef("n", "nation"),
        ),
        joins=(
            JoinCondition("o", "o_custkey", "c", "c_custkey"),
            JoinCondition("l", "l_orderkey", "o", "o_orderkey"),
            JoinCondition("c", "c_nationkey", "n", "n_nationkey"),
        ),
    )


def _q11() -> QuerySpec:
    """Q11: partsupp / supplier / nation (important stock identification)."""
    return QuerySpec(
        name="tpch_q11",
        relations=(
            RelationRef("ps", "partsupp"),
            RelationRef("s", "supplier"),
            RelationRef("n", "nation", eq("n_name", "NATION#000007")),
        ),
        joins=(
            JoinCondition("ps", "ps_suppkey", "s", "s_suppkey"),
            JoinCondition("s", "s_nationkey", "n", "n_nationkey"),
        ),
    )


def _q12() -> QuerySpec:
    """Q12: orders / lineitem (shipping modes and order priority)."""
    return QuerySpec(
        name="tpch_q12",
        relations=(
            RelationRef("o", "orders"),
            RelationRef("l", "lineitem", isin("l_shipmode", ["MAIL", "SHIP"]) & lt("l_receiptdate", 1000)),
        ),
        joins=(JoinCondition("l", "l_orderkey", "o", "o_orderkey"),),
    )


def _q13() -> QuerySpec:
    """Q13: customer / orders (customer distribution)."""
    return QuerySpec(
        name="tpch_q13",
        relations=(
            RelationRef("c", "customer"),
            RelationRef("o", "orders", eq("o_orderpriority", "1-URGENT")),
        ),
        joins=(JoinCondition("o", "o_custkey", "c", "c_custkey"),),
    )


def _q14() -> QuerySpec:
    """Q14: lineitem / part (promotion effect)."""
    return QuerySpec(
        name="tpch_q14",
        relations=(
            RelationRef("l", "lineitem", between("l_shipdate", 1000, 1030)),
            RelationRef("p", "part"),
        ),
        joins=(JoinCondition("l", "l_partkey", "p", "p_partkey"),),
    )


def _q15() -> QuerySpec:
    """Q15: supplier / lineitem (top supplier)."""
    return QuerySpec(
        name="tpch_q15",
        relations=(
            RelationRef("s", "supplier"),
            RelationRef("l", "lineitem", between("l_shipdate", 1200, 1290)),
        ),
        joins=(JoinCondition("l", "l_suppkey", "s", "s_suppkey"),),
    )


def _q16() -> QuerySpec:
    """Q16: partsupp / part / supplier (parts/supplier relationship)."""
    return QuerySpec(
        name="tpch_q16",
        relations=(
            RelationRef("ps", "partsupp"),
            RelationRef("p", "part", isin("p_size", [9, 14, 19, 23, 36, 45, 49, 3])),
            RelationRef("s", "supplier", eq("s_comment_has_complaint", 0)),
        ),
        joins=(
            JoinCondition("ps", "ps_partkey", "p", "p_partkey"),
            JoinCondition("ps", "ps_suppkey", "s", "s_suppkey"),
        ),
    )


def _q17() -> QuerySpec:
    """Q17: lineitem / part (small-quantity-order revenue)."""
    return QuerySpec(
        name="tpch_q17",
        relations=(
            RelationRef("l", "lineitem", lt("l_quantity", 3)),
            RelationRef("p", "part", eq("p_brand", "Brand#23") & eq("p_container", "MED BAG")),
        ),
        joins=(JoinCondition("l", "l_partkey", "p", "p_partkey"),),
    )


def _q18() -> QuerySpec:
    """Q18: customer / orders / lineitem (large volume customer)."""
    return QuerySpec(
        name="tpch_q18",
        relations=(
            RelationRef("c", "customer"),
            RelationRef("o", "orders", gt("o_totalprice", 400000.0)),
            RelationRef("l", "lineitem"),
        ),
        joins=(
            JoinCondition("o", "o_custkey", "c", "c_custkey"),
            JoinCondition("l", "l_orderkey", "o", "o_orderkey"),
        ),
    )


def _q19() -> QuerySpec:
    """Q19: lineitem / part (discounted revenue, disjunctive predicate)."""
    return QuerySpec(
        name="tpch_q19",
        relations=(
            RelationRef("l", "lineitem", isin("l_shipmode", ["AIR", "REG AIR"]) & lt("l_quantity", 20)),
            RelationRef("p", "part", isin("p_container", ["SM CASE", "SM BOX", "MED BAG"])),
        ),
        joins=(JoinCondition("l", "l_partkey", "p", "p_partkey"),),
    )


def _q20() -> QuerySpec:
    """Q20: supplier / nation / partsupp / part (potential part promotion)."""
    return QuerySpec(
        name="tpch_q20",
        relations=(
            RelationRef("s", "supplier"),
            RelationRef("n", "nation", eq("n_name", "NATION#000012")),
            RelationRef("ps", "partsupp"),
            RelationRef("p", "part", starts_with("p_name", "part#00001")),
        ),
        joins=(
            JoinCondition("s", "s_nationkey", "n", "n_nationkey"),
            JoinCondition("ps", "ps_suppkey", "s", "s_suppkey"),
            JoinCondition("ps", "ps_partkey", "p", "p_partkey"),
        ),
    )


def _q21() -> QuerySpec:
    """Q21: supplier / lineitem / orders / nation (suppliers who kept orders waiting)."""
    return QuerySpec(
        name="tpch_q21",
        relations=(
            RelationRef("s", "supplier"),
            RelationRef("l", "lineitem", gt("l_receiptdate", 1400)),
            RelationRef("o", "orders", eq("o_orderstatus", "F")),
            RelationRef("n", "nation", eq("n_name", "NATION#000020")),
        ),
        joins=(
            JoinCondition("l", "l_suppkey", "s", "s_suppkey"),
            JoinCondition("l", "l_orderkey", "o", "o_orderkey"),
            JoinCondition("s", "s_nationkey", "n", "n_nationkey"),
        ),
    )


def _q22() -> QuerySpec:
    """Q22: customer / orders (global sales opportunity)."""
    return QuerySpec(
        name="tpch_q22",
        relations=(
            RelationRef("c", "customer", gt("c_acctbal", 5000.0)),
            RelationRef("o", "orders"),
        ),
        joins=(JoinCondition("o", "o_custkey", "c", "c_custkey"),),
    )


_QUERY_BUILDERS = {
    2: _q2, 3: _q3, 4: _q4, 5: _q5, 7: _q7, 8: _q8, 9: _q9, 10: _q10,
    11: _q11, 12: _q12, 13: _q13, 14: _q14, 15: _q15, 16: _q16, 17: _q17,
    18: _q18, 19: _q19, 20: _q20, 21: _q21, 22: _q22,
}

#: The queries shown in Figure 6a (at least two joins, non-trivial ordering).
FIGURE6_QUERIES = (2, 3, 5, 7, 8, 9, 10, 11, 18, 21)

#: Queries the paper marks as cyclic in TPC-H.
CYCLIC_QUERIES = (5,)


def query(number: int) -> QuerySpec:
    """Return the join-structure QuerySpec for TPC-H query ``number``.

    Q1 and Q6 are excluded (single-table scans, no join ordering involved),
    matching the paper's evaluation.
    """
    try:
        return _QUERY_BUILDERS[number]()
    except KeyError:
        raise WorkloadError(
            f"TPC-H Q{number} is not part of the workload (Q1/Q6 are single-table; "
            f"valid numbers: {sorted(_QUERY_BUILDERS)})"
        ) from None


def all_queries() -> Dict[str, QuerySpec]:
    """All TPC-H queries of the workload, keyed by name."""
    return {f"q{n}": builder() for n, builder in sorted(_QUERY_BUILDERS.items())}


def figure6_queries() -> Dict[str, QuerySpec]:
    """The subset shown in the paper's Figure 6a robustness plot."""
    return {f"q{n}": _QUERY_BUILDERS[n]() for n in FIGURE6_QUERIES}


def query_numbers() -> tuple[int, ...]:
    """All available query numbers."""
    return tuple(sorted(_QUERY_BUILDERS))
