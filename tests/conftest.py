"""Shared fixtures for the test suite.

The fixtures build small, deterministic databases so the full suite stays
fast while still exercising realistic join structures (star, snowflake,
many-to-many, cyclic).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import Database, ExecutionMode, JoinCondition, QuerySpec, RelationRef
from repro.expr import eq, lt
from repro.storage.table import ForeignKey
from repro.workloads import dsb, job, tpcds, tpch


@pytest.fixture(scope="session", autouse=True)
def shm_leak_guard():
    """Assert engine-owned resources drain by end of session.

    Autouse at session scope, so it is set up before (and torn down after)
    every other session fixture: databases the fixtures publish arena
    segments from are closed first, then this guard shuts the process pool
    down and fails the session if any segment this process created is still
    live or any memory governor still holds reservations — the no-leak
    acceptance criterion, covering injected faults, timeouts, and worker
    crashes too.
    """
    import gc

    from repro.exec import faults
    from repro.exec.process import shutdown_workers
    from repro.storage import buffer, shm

    yield
    shutdown_workers()
    faults.clear()
    shm.assert_no_leaks()
    # Collect first: governors whose queries completed are garbage, and only
    # still-referenced ones with live reservations indicate a leak.
    gc.collect()
    buffer.assert_no_outstanding_reservations()


@pytest.fixture(scope="session")
def imdb_db() -> Database:
    """A small IMDB-like database (keyword / title / movie_keyword / movie_info / cast_info)."""
    rng = np.random.default_rng(17)
    n_k, n_t, n_n, n_mk, n_mi, n_ci = 40, 300, 200, 1_500, 4_000, 2_500
    db = Database()
    db.register_dataframe(
        "keyword",
        {"id": np.arange(1, n_k + 1), "keyword": [f"kw{i}" for i in range(1, n_k + 1)]},
        primary_key=["id"],
    )
    db.register_dataframe(
        "title",
        {"id": np.arange(1, n_t + 1), "production_year": rng.integers(1950, 2020, n_t)},
        primary_key=["id"],
    )
    db.register_dataframe(
        "name",
        {"id": np.arange(1, n_n + 1), "gender": rng.choice(["m", "f"], n_n)},
        primary_key=["id"],
    )
    db.register_dataframe(
        "movie_keyword",
        {
            "movie_id": rng.integers(1, n_t + 1, n_mk),
            "keyword_id": rng.integers(1, n_k + 1, n_mk),
        },
        foreign_keys=[
            ForeignKey("movie_id", "title", "id"),
            ForeignKey("keyword_id", "keyword", "id"),
        ],
    )
    db.register_dataframe(
        "movie_info",
        {"movie_id": rng.integers(1, n_t + 1, n_mi), "info_bucket": rng.integers(0, 50, n_mi)},
        foreign_keys=[ForeignKey("movie_id", "title", "id")],
    )
    db.register_dataframe(
        "cast_info",
        {
            "movie_id": rng.integers(1, n_t + 1, n_ci),
            "person_id": rng.integers(1, n_n + 1, n_ci),
        },
        foreign_keys=[
            ForeignKey("movie_id", "title", "id"),
            ForeignKey("person_id", "name", "id"),
        ],
    )
    yield db
    db.close()


@pytest.fixture(scope="session")
def star_query() -> QuerySpec:
    """An acyclic (in fact γ-acyclic) 4-relation query over the IMDB fixture."""
    return QuerySpec(
        name="imdb_star",
        relations=(
            RelationRef("k", "keyword", eq("keyword", "kw7")),
            RelationRef("t", "title", lt("production_year", 2000)),
            RelationRef("mk", "movie_keyword"),
            RelationRef("mi", "movie_info"),
        ),
        joins=(
            JoinCondition("mk", "keyword_id", "k", "id"),
            JoinCondition("mk", "movie_id", "t", "id"),
            JoinCondition("mi", "movie_id", "t", "id"),
        ),
    )


@pytest.fixture(scope="session")
def chain_query() -> QuerySpec:
    """A 5-relation chain/star mix over the IMDB fixture (keyword-mk-title-ci-name)."""
    return QuerySpec(
        name="imdb_chain",
        relations=(
            RelationRef("k", "keyword", eq("keyword", "kw3")),
            RelationRef("mk", "movie_keyword"),
            RelationRef("t", "title"),
            RelationRef("ci", "cast_info"),
            RelationRef("n", "name", eq("gender", "f")),
        ),
        joins=(
            JoinCondition("mk", "keyword_id", "k", "id"),
            JoinCondition("mk", "movie_id", "t", "id"),
            JoinCondition("ci", "movie_id", "t", "id"),
            JoinCondition("ci", "person_id", "n", "id"),
        ),
    )


@pytest.fixture(scope="session")
def cyclic_query() -> QuerySpec:
    """A cyclic 3-relation query (a genuine triangle over three distinct attributes).

    The three join conditions use three *different* attribute pairs, so the
    attribute classes stay separate and the query hypergraph is a triangle
    (not α-acyclic).  The join semantics are artificial but the data types
    line up; only the topology matters for these tests.
    """
    return QuerySpec(
        name="imdb_triangle",
        relations=(
            RelationRef("mk", "movie_keyword"),
            RelationRef("mi", "movie_info"),
            RelationRef("ci", "cast_info"),
        ),
        joins=(
            JoinCondition("mk", "movie_id", "mi", "movie_id"),
            JoinCondition("mi", "info_bucket", "ci", "movie_id"),
            JoinCondition("ci", "person_id", "mk", "keyword_id"),
        ),
    )


@pytest.fixture(scope="session")
def tpch_db() -> Database:
    """A tiny TPC-H database shared by integration tests."""
    db = Database()
    tpch.load(db, scale=0.1, seed=1)
    yield db
    db.close()


@pytest.fixture(scope="session")
def job_db() -> Database:
    """A tiny JOB/IMDB database shared by integration tests."""
    db = Database()
    job.load(db, scale=0.1, seed=1)
    yield db
    db.close()


@pytest.fixture(scope="session")
def tpcds_db() -> Database:
    """A tiny TPC-DS database shared by integration tests."""
    db = Database()
    tpcds.load(db, scale=0.1, seed=1)
    yield db
    db.close()


@pytest.fixture(scope="session")
def dsb_db() -> Database:
    """A tiny DSB (skewed TPC-DS) database shared by integration tests."""
    db = Database()
    dsb.load(db, scale=0.1, seed=1)
    yield db
    db.close()


@pytest.fixture(scope="session")
def all_modes() -> tuple[ExecutionMode, ...]:
    """Every execution mode, in a fixed order."""
    return tuple(ExecutionMode)
