"""Tests for adaptive transfer execution.

Covers the :class:`~repro.exec.adaptive.AdaptiveTransferController` (yield
observation, pending-probe cancellation, dead-build elimination over the
``provides``/``requires`` op metadata, wholesale backward-pass skipping),
the KMV distinct-count sketch and its accuracy bounds, NDV-based Bloom
sizing, the exact-bitmap downgrade, bit-identity of adaptive on/off across
all five modes / five workloads / three backends, artifact caching and
invalidation of NDV sketches, the IN-list kernel routing, edge cases
(single-relation queries, forward-only schedules, zero-yield first steps,
PK-FK pruning interaction), observability markers, and config plumbing.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    Database,
    ExecutionConfig,
    ExecutionMode,
    ExecutionOptions,
    JoinCondition,
    QuerySpec,
    RelationRef,
)
from repro.core.transfer_schedule import TransferPass, TransferSchedule, TransferStep
from repro.exec.adaptive import AdaptiveTransferController
from repro.expr import eq, isin, lt
from repro.optimizer.cardinality import KMV_DEFAULT_K, KMVSketch, kmv_distinct_estimate
from repro.plan.join_plan import JoinPlan
from repro.plan.physical import (
    Aggregate,
    BloomBuild,
    BloomProbe,
    HashBuild,
    HashProbe,
    Operand,
    PhysicalPlan,
    Scan,
)
from repro.storage.table import ForeignKey
from repro.workloads import dsb, job, synthetic, tpcds, tpch


def _options(adaptive=False, ndv=None, bitmap=None, **kwargs) -> ExecutionOptions:
    return ExecutionOptions(
        execution=ExecutionConfig(
            adaptive_transfer=adaptive, ndv_sizing=ndv, bitmap_downgrade=bitmap, **kwargs
        )
    )


STATIC = _options()
#: Every adaptive configuration that must stay result-identical to STATIC.
ADAPTIVE_CONFIGS = {
    "skip_only": _options(adaptive=True, ndv=False, bitmap=False),
    "ndv_only": _options(adaptive=False, ndv=True, bitmap=False),
    "bitmap_only": _options(adaptive=False, ndv=False, bitmap=True),
    "all_on": _options(adaptive=True),
}


def _signature(result):
    """Result identity: aggregates + final output rows.

    Intermediate statistics (reduced rows, filter bytes) legitimately differ
    under adaptive execution — skipping a reductive pass leaves more rows
    for the join phase — but the query's *answer* must be bit-identical.
    """
    return (tuple(sorted(result.aggregates.items())), result.output_rows)


def _star_db(n_dim=2_000, n_fact=40_000, num_dims=3, attr_domain=1000, seed=7):
    """A star-schema database with per-dimension uniform filter attributes."""
    rng = np.random.default_rng(seed)
    db = Database()
    fact = {"v": np.arange(n_fact, dtype=np.int64)}
    for d in range(num_dims):
        db.register_dataframe(
            f"dim{d}",
            {
                "id": np.arange(n_dim, dtype=np.int64),
                "attr": rng.integers(0, attr_domain, n_dim),
            },
            primary_key=["id"],
        )
        fact[f"d{d}_id"] = rng.integers(0, n_dim, n_fact)
    db.register_dataframe("fact", fact)
    return db


def _star_query(num_dims=3, bound=999, attr_domain=1000):
    relations = [RelationRef("f", "fact")]
    joins = []
    for d in range(num_dims):
        relations.append(RelationRef(f"d{d}", f"dim{d}", lt("attr", bound)))
        joins.append(JoinCondition("f", f"d{d}_id", f"d{d}", "id"))
    return QuerySpec(name="adaptive_star", relations=tuple(relations), joins=tuple(joins))


# ---------------------------------------------------------------------------
# Op dependency metadata
# ---------------------------------------------------------------------------
class TestProvidesRequires:
    def test_operand_tokens(self):
        assert Operand.relation("r").token() == "rel:r"
        assert Operand.intermediate(3).token() == "slot:3"

    def test_transfer_ops(self):
        build = BloomBuild(
            step_id=4,
            source=Operand.relation("s"),
            target=Operand.relation("t"),
            attributes=("a",),
            pass_="forward",
        )
        probe = BloomProbe(
            step_id=4,
            source=Operand.relation("s"),
            target=Operand.relation("t"),
            attributes=("a",),
            pass_="forward",
        )
        assert build.provides() == ("stage:4",)
        assert build.requires() == ("rel:s",)
        assert probe.requires() == ("stage:4", "rel:t")
        assert probe.provides() == ("rel:t",)

    def test_composite_build_reads_both_sides(self):
        build = BloomBuild(
            step_id=0,
            source=Operand.relation("s"),
            target=Operand.relation("t"),
            attributes=("a", "b"),
            pass_="forward",
        )
        assert set(build.requires()) == {"rel:s", "rel:t"}

    def test_join_ops(self):
        scan = Scan(alias="r", table="r")
        hb = HashBuild(build_id=1, input=Operand.relation("r"), attributes=("a",))
        hp = HashProbe(
            build_id=1, probe=Operand.intermediate(0), output_slot=2, attributes=("a",)
        )
        agg = Aggregate(input=Operand.intermediate(2))
        assert scan.provides() == ("rel:r",)
        assert hb.provides() == ("build:1",)
        assert hp.requires() == ("build:1", "slot:0")
        assert hp.provides() == ("slot:2",)
        assert agg.requires() == ("slot:2",)


# ---------------------------------------------------------------------------
# Controller unit behavior
# ---------------------------------------------------------------------------
def _transfer_plan(steps):
    """Compile a list of (step_id, source, target, pass_) into a bare plan."""
    ops = []
    for step_id, source, target, pass_ in steps:
        ops.append(
            BloomBuild(
                step_id=step_id,
                source=Operand.relation(source),
                target=Operand.relation(target),
                attributes=("a",),
                pass_=pass_,
            )
        )
        ops.append(
            BloomProbe(
                step_id=step_id,
                source=Operand.relation(source),
                target=Operand.relation(target),
                attributes=("a",),
                pass_=pass_,
            )
        )
    return PhysicalPlan(query_name="t", mode="rpt", ops=tuple(ops))


class TestAdaptiveTransferController:
    def test_high_yield_never_cancels(self):
        plan = _transfer_plan(
            [(0, "a", "f", "forward"), (1, "b", "f", "forward"), (2, "f", "a", "backward")]
        )
        ctl = AdaptiveTransferController(plan, min_yield=0.01)
        for index, op in enumerate(plan):
            assert not ctl.should_skip(index, op)
            if isinstance(op, BloomProbe):
                ctl.observe(index, op, 1000, 500)  # 50% yield everywhere
        assert ctl.cancelled_op_count == 0

    def test_low_yield_cancels_remaining_probes_and_their_builds(self):
        plan = _transfer_plan(
            [(0, "a", "f", "forward"), (1, "b", "f", "forward"), (2, "c", "f", "forward")]
        )
        ctl = AdaptiveTransferController(plan, min_yield=0.01)
        assert not ctl.should_skip(0, plan.ops[0])
        assert not ctl.should_skip(1, plan.ops[1])
        ctl.observe(1, plan.ops[1], 1000, 999)  # 0.1% < 1%
        # Both remaining build/probe pairs targeting f are dead now.
        assert ctl.should_skip(2, plan.ops[2])  # build b
        assert ctl.should_skip(3, plan.ops[3])  # probe b->f
        assert ctl.should_skip(4, plan.ops[4])  # build c
        assert ctl.should_skip(5, plan.ops[5])  # probe c->f
        assert ctl.cancelled_steps == {1, 2}
        assert any("cancel" in d for d in ctl.decisions)

    def test_low_yield_on_one_target_spares_other_targets(self):
        plan = _transfer_plan([(0, "a", "f", "forward"), (1, "a", "g", "forward")])
        ctl = AdaptiveTransferController(plan, min_yield=0.01)
        ctl.observe(1, plan.ops[1], 1000, 1000)  # zero yield on f
        assert ctl.should_skip(2, plan.ops[2]) is False  # build a for g stays
        assert ctl.should_skip(3, plan.ops[3]) is False  # probe a->g stays

    def test_backward_pass_skipped_when_build_sides_unreduced(self):
        plan = _transfer_plan(
            [
                (0, "a", "f", "forward"),
                (1, "f", "a", "backward"),
                (2, "f", "b", "backward"),
            ]
        )
        ctl = AdaptiveTransferController(plan, min_yield=0.01)
        ctl.observe(1, plan.ops[1], 1000, 998)  # f reduced only 0.2%
        # First backward op triggers the wholesale decision.
        assert ctl.should_skip(2, plan.ops[2])
        assert ctl.should_skip(3, plan.ops[3])
        assert ctl.should_skip(4, plan.ops[4])
        assert ctl.should_skip(5, plan.ops[5])
        assert any("backward" in d for d in ctl.decisions)

    def test_backward_pass_kept_when_a_build_side_was_reduced(self):
        plan = _transfer_plan(
            [(0, "a", "f", "forward"), (1, "f", "a", "backward")]
        )
        ctl = AdaptiveTransferController(plan, min_yield=0.01)
        ctl.observe(1, plan.ops[1], 1000, 400)  # f genuinely reduced
        assert not ctl.should_skip(2, plan.ops[2])
        assert not ctl.should_skip(3, plan.ops[3])

    def test_zero_rows_before_counts_as_zero_yield(self):
        plan = _transfer_plan([(0, "a", "f", "forward"), (1, "b", "f", "forward")])
        ctl = AdaptiveTransferController(plan, min_yield=0.01)
        ctl.observe(1, plan.ops[1], 0, 0)
        assert ctl.should_skip(3, plan.ops[3])

    def test_min_yield_validation(self):
        plan = _transfer_plan([(0, "a", "f", "forward")])
        with pytest.raises(ValueError):
            AdaptiveTransferController(plan, min_yield=1.5)


# ---------------------------------------------------------------------------
# KMV sketch accuracy
# ---------------------------------------------------------------------------
class TestKMVSketch:
    @pytest.mark.parametrize("ndv", [10, 500, 5_000, 50_000])
    def test_estimate_within_bounds(self, ndv):
        rng = np.random.default_rng(ndv)
        values = rng.integers(0, ndv, size=300_000, dtype=np.int64)
        true_ndv = np.unique(values).size
        estimate = kmv_distinct_estimate(values)
        assert true_ndv * 0.85 <= estimate <= true_ndv * 1.15

    def test_small_columns_are_exact(self):
        values = np.array([1, 2, 2, 3, 3, 3], dtype=np.int64)
        sketch = KMVSketch.from_values(values)
        assert sketch.exact
        assert sketch.estimate == 3.0

    def test_empty_column(self):
        sketch = KMVSketch.from_values(np.zeros(0, dtype=np.int64))
        assert sketch.estimate == 0.0 and sketch.exact

    def test_duplicate_heavy_column_avoids_full_sort_yet_estimates(self):
        # NDV far below the pool size: the flooded pool degrades to a
        # smaller-k sample rather than mis-estimating.
        rng = np.random.default_rng(3)
        values = rng.integers(0, 200, size=1_000_000, dtype=np.int64)
        estimate = kmv_distinct_estimate(values)
        assert 150 <= estimate <= 260

    def test_from_hashes_matches_from_values(self):
        from repro.bloom.bloom_filter import hash_keys

        rng = np.random.default_rng(4)
        values = rng.integers(0, 10_000, size=50_000, dtype=np.int64)
        a = KMVSketch.from_values(values)
        b = KMVSketch.from_hashes(hash_keys(values))
        np.testing.assert_array_equal(a.minima, b.minima)
        assert a.estimate == b.estimate

    def test_nbytes_positive(self):
        sketch = KMVSketch.from_values(np.arange(10_000, dtype=np.int64))
        assert sketch.nbytes > 0
        assert sketch.k == KMV_DEFAULT_K


# ---------------------------------------------------------------------------
# Bit-identity: adaptive on/off produce the same answers everywhere
# ---------------------------------------------------------------------------
class TestBitIdentityMatrix:
    def _assert_matrix(self, db, query, plan=None):
        if plan is None:
            plan = db.optimizer_plan(query)
        for mode in ExecutionMode:
            baseline = _signature(db.execute(query, mode=mode, plan=plan, options=STATIC))
            for name, options in ADAPTIVE_CONFIGS.items():
                result = db.execute(query, mode=mode, plan=plan, options=options)
                assert _signature(result) == baseline, (mode, name)

    def test_synthetic(self):
        instance = synthetic.figure2_instance(base_size=40)
        self._assert_matrix(instance.database, instance.query)

    def test_tpch(self, tpch_db):
        self._assert_matrix(tpch_db, tpch.query(3))

    def test_job(self, job_db):
        self._assert_matrix(job_db, job.query(1))

    def test_tpcds(self, tpcds_db):
        self._assert_matrix(tpcds_db, tpcds.query(3))

    def test_dsb(self, dsb_db):
        self._assert_matrix(dsb_db, dsb.query(7))

    @pytest.mark.parametrize("backend", ["serial", "chunked", "parallel"])
    def test_backends(self, imdb_db, chain_query, backend):
        baseline = _signature(
            imdb_db.execute(chain_query, mode=ExecutionMode.RPT, options=STATIC)
        )
        options = ExecutionOptions(
            execution=ExecutionConfig(
                backend=backend, chunk_size=256, adaptive_transfer=True
            )
        )
        result = imdb_db.execute(chain_query, mode=ExecutionMode.RPT, options=options)
        assert _signature(result) == baseline, backend

    @pytest.mark.parametrize("backend", ["serial", "chunked", "parallel"])
    def test_backend_decisions_are_identical(self, backend):
        """Skip decisions are made at morsel-gather barriers, so the set of
        adaptively skipped steps must not depend on the backend."""
        db = _star_db()
        query = _star_query(bound=999)
        plan = db.optimizer_plan(query)
        serial = db.execute(
            query,
            mode=ExecutionMode.RPT,
            plan=plan,
            options=_options(adaptive=True, backend="serial"),
        )
        other = db.execute(
            query,
            mode=ExecutionMode.RPT,
            plan=plan,
            options=_options(adaptive=True, backend=backend, chunk_size=512),
        )
        def skipset(result):
            return [
                (s.source, s.target, s.pass_, s.adaptive_skipped)
                for s in result.stats.transfer_steps
            ]
        assert skipset(serial) == skipset(other)
        assert _signature(serial) == _signature(other)


# ---------------------------------------------------------------------------
# End-to-end adaptive behavior
# ---------------------------------------------------------------------------
class TestAdaptiveExecution:
    def test_zero_yield_first_step_cancels_the_rest(self):
        db = _star_db()
        query = _star_query(bound=1000)  # filters keep every dimension row
        result = db.execute(
            query,
            mode=ExecutionMode.RPT,
            options=_options(adaptive=True, ndv=False, bitmap=False),
        )
        stats = result.stats
        executed = [s for s in stats.transfer_steps if not s.skipped]
        skipped = [s for s in stats.transfer_steps if s.adaptive_skipped]
        assert len(executed) == 1  # only the first probe ran
        assert stats.adaptive_steps_skipped == len(skipped) > 0
        static = db.execute(query, mode=ExecutionMode.RPT, options=STATIC)
        assert _signature(result) == _signature(static)

    def test_high_yield_runs_every_step(self):
        db = _star_db(attr_domain=10)
        query = _star_query(bound=5, attr_domain=10)  # ~50% filters
        result = db.execute(
            query, mode=ExecutionMode.RPT, options=_options(adaptive=True)
        )
        assert result.stats.adaptive_steps_skipped == 0
        assert all(not s.skipped for s in result.stats.transfer_steps)

    def test_yannakakis_semijoin_steps_also_adapt(self):
        db = _star_db()
        query = _star_query(bound=1000)
        result = db.execute(
            query, mode=ExecutionMode.YANNAKAKIS, options=_options(adaptive=True)
        )
        assert result.stats.adaptive_steps_skipped > 0
        static = db.execute(query, mode=ExecutionMode.YANNAKAKIS, options=STATIC)
        assert _signature(result) == _signature(static)

    def test_single_relation_query(self):
        db = Database()
        db.register_dataframe("t", {"id": np.arange(100, dtype=np.int64)})
        query = QuerySpec(name="single", relations=(RelationRef("t", "t"),), joins=())
        result = db.execute(query, mode=ExecutionMode.RPT, options=_options(adaptive=True))
        assert result.output_rows == 100
        assert result.stats.adaptive_steps_skipped == 0

    def test_forward_only_schedule(self):
        """A schedule whose backward pass is dropped (§4.3 alignment) must
        execute cleanly with the controller's backward decision never firing."""
        db = _star_db(num_dims=1)
        query = _star_query(num_dims=1, bound=999)
        graph = db.join_graph(query)
        from repro.core.largest_root import largest_root

        tree = largest_root(graph)
        plan = JoinPlan.from_left_deep(tree.aligned_join_order())
        options = ExecutionOptions(
            execution=ExecutionConfig(adaptive_transfer=True),
            skip_backward_if_aligned=True,
        )
        result = db.execute(query, mode=ExecutionMode.RPT, plan=plan, options=options)
        assert result.schedule is not None
        assert not result.schedule.has_backward_pass
        static = db.execute(
            query,
            mode=ExecutionMode.RPT,
            plan=plan,
            options=ExecutionOptions(skip_backward_if_aligned=True),
        )
        assert _signature(result) == _signature(static)

    def test_prune_trivial_interaction(self):
        """§4.3-pruned steps are not adaptive observations: an unfiltered PK
        side is skipped statically and must not feed yield decisions."""
        rng = np.random.default_rng(11)
        db = Database()
        n_dim, n_fact = 500, 8_000
        db.register_dataframe(
            "dim", {"id": np.arange(n_dim, dtype=np.int64)}, primary_key=["id"]
        )
        db.register_dataframe(
            "other",
            {"id": np.arange(n_dim, dtype=np.int64), "attr": rng.integers(0, 10, n_dim)},
            primary_key=["id"],
        )
        db.register_dataframe(
            "fact",
            {
                "dim_id": rng.integers(0, n_dim, n_fact),
                "other_id": rng.integers(0, n_dim, n_fact),
            },
            foreign_keys=[
                ForeignKey("dim_id", "dim", "id"),
                ForeignKey("other_id", "other", "id"),
            ],
        )
        query = QuerySpec(
            name="prune_mix",
            relations=(
                RelationRef("f", "fact"),
                RelationRef("d", "dim"),  # unfiltered PK side -> §4.3 prune
                RelationRef("o", "other", lt("attr", 5)),
            ),
            joins=(
                JoinCondition("f", "dim_id", "d", "id"),
                JoinCondition("f", "other_id", "o", "id"),
            ),
        )
        adaptive = db.execute(query, mode=ExecutionMode.RPT, options=_options(adaptive=True))
        static = db.execute(query, mode=ExecutionMode.RPT, options=STATIC)
        assert _signature(adaptive) == _signature(static)
        pruned = [
            s for s in adaptive.stats.transfer_steps if s.skipped and not s.adaptive_skipped
        ]
        assert pruned, "the unfiltered PK side should be statically pruned"

    def test_ndv_sizing_shrinks_filters(self):
        db = _star_db(n_dim=500, n_fact=50_000, attr_domain=10)
        query = _star_query(bound=5, attr_domain=10)
        plan = db.optimizer_plan(query)
        static = db.execute(query, mode=ExecutionMode.RPT, plan=plan, options=STATIC)
        ndv = db.execute(
            query,
            mode=ExecutionMode.RPT,
            plan=plan,
            options=_options(adaptive=False, ndv=True, bitmap=False),
        )
        assert ndv.stats.bloom_bytes < static.stats.bloom_bytes
        assert ndv.stats.adaptive_filter_bytes_saved > 0
        assert _signature(ndv) == _signature(static)

    def test_bitmap_downgrade_fires_on_dense_domains(self):
        db = _star_db(attr_domain=10)
        query = _star_query(bound=5, attr_domain=10)
        result = db.execute(
            query,
            mode=ExecutionMode.RPT,
            options=_options(adaptive=False, ndv=False, bitmap=True),
        )
        assert result.stats.adaptive_exact_downgrades > 0
        assert any(s.downgraded_exact for s in result.stats.transfer_steps)
        static = db.execute(query, mode=ExecutionMode.RPT, options=STATIC)
        assert _signature(result) == _signature(static)
        # Exact semi-joins admit no false positives, so every downgraded
        # reduction is at least as tight as its Bloom counterpart.
        by_step = {
            (s.source, s.target, s.pass_): s
            for s in result.stats.transfer_steps
        }
        for s in static.stats.transfer_steps:
            mirror = by_step[(s.source, s.target, s.pass_)]
            assert mirror.rows_after <= s.rows_after

    def test_bitmap_downgrade_skips_sparse_domains(self):
        rng = np.random.default_rng(13)
        db = Database()
        n_dim, n_fact = 2_000, 30_000
        ids = rng.choice(np.int64(2) ** 60, size=n_dim, replace=False)
        db.register_dataframe(
            "dim", {"id": ids, "attr": rng.integers(0, 10, n_dim)}, primary_key=["id"]
        )
        db.register_dataframe("fact", {"dim_id": rng.choice(ids, size=n_fact)})
        query = QuerySpec(
            name="sparse",
            relations=(RelationRef("f", "fact"), RelationRef("d", "dim", lt("attr", 5))),
            joins=(JoinCondition("f", "dim_id", "d", "id"),),
        )
        result = db.execute(
            query,
            mode=ExecutionMode.RPT,
            options=_options(adaptive=False, ndv=False, bitmap=True),
        )
        assert result.stats.adaptive_exact_downgrades == 0
        static = db.execute(query, mode=ExecutionMode.RPT, options=STATIC)
        assert _signature(result) == _signature(static)


# ---------------------------------------------------------------------------
# NDV sketches in the artifact cache
# ---------------------------------------------------------------------------
class TestNDVSketchArtifacts:
    def _run(self, db, query, **kwargs):
        # Bitmap downgrade off: on these dense-id fixtures it would replace
        # every Bloom build, and with them the NDV sizing under test.
        return db.execute(
            query,
            mode=ExecutionMode.RPT,
            options=_options(adaptive=True, bitmap=False, artifact_cache=True, **kwargs),
        )

    def test_sketches_cached_across_queries(self):
        db = _star_db(n_dim=500, n_fact=20_000, attr_domain=10)
        query = _star_query(bound=5, attr_domain=10)
        self._run(db, query)
        assert db.artifact_cache is not None
        sketch_keys = [k for k in db.artifact_cache._entries if k.kind == "ndv_sketch"]
        assert sketch_keys
        warm = self._run(db, query)
        assert warm.stats.artifact_cache_hits > 0

    def test_sketches_invalidated_on_table_replace(self):
        db = _star_db(n_dim=500, n_fact=20_000, attr_domain=10)
        query = _star_query(bound=5, attr_domain=10)
        self._run(db, query)
        old_versions = {
            k.table_version for k in db.artifact_cache._entries if k.table == "fact"
        }
        rng = np.random.default_rng(99)
        new_fact = {"v": np.arange(10_000, dtype=np.int64)}
        for d in range(3):
            new_fact[f"d{d}_id"] = rng.integers(0, 500, 10_000)
        db.register_dataframe("fact", new_fact, replace=True)
        # Eager invalidation dropped every artifact over the old table...
        assert all(k.table != "fact" for k in db.artifact_cache._entries)
        changed = self._run(db, query)
        # ...and the re-sketched artifacts are keyed by the new version.
        new_versions = {
            k.table_version for k in db.artifact_cache._entries if k.table == "fact"
        }
        assert new_versions and new_versions.isdisjoint(old_versions)
        # Rebuild an identical database for the expected answer.
        fresh_fact = Database()
        for d in range(3):
            fresh_fact.register_dataframe(
                f"dim{d}",
                {
                    "id": db.table(f"dim{d}").column("id").data,
                    "attr": db.table(f"dim{d}").column("attr").data,
                },
                primary_key=["id"],
            )
        fresh_fact.register_dataframe(
            "fact", {name: db.table("fact").column(name).data for name in new_fact}
        )
        expected = fresh_fact.execute(query, mode=ExecutionMode.RPT, options=STATIC)
        assert _signature(changed) == _signature(expected)


# ---------------------------------------------------------------------------
# IN-list kernel routing
# ---------------------------------------------------------------------------
class TestInListKernel:
    def test_matches_np_isin_on_integers(self):
        rng = np.random.default_rng(5)
        data = rng.integers(0, 1_000, size=50_000, dtype=np.int64)
        db = Database()
        db.register_dataframe("t", {"x": data})
        values = rng.integers(0, 1_000, size=40, dtype=np.int64).tolist()
        mask = isin("x", values).evaluate(db.table("t"))
        np.testing.assert_array_equal(mask, np.isin(data, np.asarray(values)))

    def test_string_in_list_with_missing_values(self):
        db = Database()
        db.register_dataframe("t", {"s": ["a", "b", "c", "a", "d"]})
        mask = isin("s", ["a", "zzz"]).evaluate(db.table("t"))
        np.testing.assert_array_equal(mask, np.array([True, False, False, True, False]))

    def test_empty_in_list(self):
        db = Database()
        db.register_dataframe("t", {"x": np.arange(10, dtype=np.int64)})
        mask = isin("x", []).evaluate(db.table("t"))
        assert mask.dtype == bool and not mask.any() and mask.shape == (10,)

    def test_float_in_list(self):
        db = Database()
        db.register_dataframe("t", {"x": np.array([1.5, 2.5, 3.5])})
        mask = isin("x", [2.5, 9.0]).evaluate(db.table("t"))
        np.testing.assert_array_equal(mask, np.array([False, True, False]))

    def test_large_in_list_over_dictionary_codes(self):
        rng = np.random.default_rng(6)
        words = [f"w{i}" for i in range(2_000)]
        data = rng.choice(words, size=30_000).tolist()
        db = Database()
        db.register_dataframe("t", {"s": data})
        chosen = [f"w{i}" for i in range(0, 2_000, 3)]
        mask = isin("s", chosen).evaluate(db.table("t"))
        expected = np.asarray([v in set(chosen) for v in data])
        np.testing.assert_array_equal(mask, expected)


# ---------------------------------------------------------------------------
# Observability
# ---------------------------------------------------------------------------
class TestObservability:
    def test_trace_markers_and_summaries(self):
        db = _star_db()
        query = _star_query(bound=999)
        result = db.execute(query, mode=ExecutionMode.RPT, options=_options(adaptive=True))
        stats = result.stats
        trace = stats.op_trace()
        assert "[adaptive skip]" in trace
        assert "[exact bitmap]" in trace
        assert stats.adaptive_summary().startswith("adaptive: ")
        assert "skipped" in stats.adaptive_summary()
        summary = stats.execution_summary()
        assert "adaptive: " in summary
        assert any(op.adaptive_skipped for op in stats.op_stats)
        assert any(op.downgraded_exact for op in stats.op_stats)

    def test_bytes_saved_marker(self):
        db = _star_db(n_dim=500, n_fact=50_000, attr_domain=10)
        query = _star_query(bound=5, attr_domain=10)
        result = db.execute(
            query,
            mode=ExecutionMode.RPT,
            options=_options(adaptive=False, ndv=True, bitmap=False),
        )
        assert result.stats.adaptive_filter_bytes_saved > 0
        assert "[saved " in result.stats.op_trace()
        assert "saved" in result.stats.adaptive_summary()

    def test_format_op_traces_appends_combined_summary(self):
        from repro.bench import format_op_traces, run_uniform_trace

        db = _star_db()
        query = _star_query(bound=999)
        results = run_uniform_trace(
            db, query, modes=(ExecutionMode.RPT,), options=_options(adaptive=True)
        )
        rendered = format_op_traces(results)
        assert "adaptive: " in rendered
        assert "cache: " in rendered  # hash cache is on by default

    def test_static_runs_record_no_adaptive_activity(self):
        db = _star_db()
        query = _star_query(bound=999)
        result = db.execute(query, mode=ExecutionMode.RPT, options=STATIC)
        stats = result.stats
        assert stats.adaptive_steps_skipped == 0
        assert stats.adaptive_exact_downgrades == 0
        assert stats.adaptive_filter_bytes_saved == 0
        assert stats.adaptive_summary() == ""


# ---------------------------------------------------------------------------
# Config plumbing
# ---------------------------------------------------------------------------
class TestConfigResolution:
    ENV_VARS = (
        "REPRO_ADAPTIVE_TRANSFER",
        "REPRO_ADAPTIVE_MIN_YIELD",
        "REPRO_NDV_SIZING",
        "REPRO_BITMAP_DOWNGRADE",
    )

    def test_defaults(self, monkeypatch):
        for var in self.ENV_VARS:
            monkeypatch.delenv(var, raising=False)
        resolved = ExecutionConfig().resolved()
        assert resolved.adaptive_transfer is False
        assert resolved.ndv_sizing is False
        assert resolved.bitmap_downgrade is False
        assert resolved.adaptive_min_yield == pytest.approx(0.01)

    def test_master_switch_enables_companions(self, monkeypatch):
        for var in self.ENV_VARS:
            monkeypatch.delenv(var, raising=False)
        resolved = ExecutionConfig(adaptive_transfer=True).resolved()
        assert resolved.ndv_sizing is True
        assert resolved.bitmap_downgrade is True

    def test_env_fallbacks(self, monkeypatch):
        monkeypatch.setenv("REPRO_ADAPTIVE_TRANSFER", "1")
        monkeypatch.setenv("REPRO_ADAPTIVE_MIN_YIELD", "0.05")
        monkeypatch.setenv("REPRO_NDV_SIZING", "0")
        monkeypatch.setenv("REPRO_BITMAP_DOWNGRADE", "0")
        resolved = ExecutionConfig().resolved()
        assert resolved.adaptive_transfer is True
        assert resolved.adaptive_min_yield == pytest.approx(0.05)
        assert resolved.ndv_sizing is False
        assert resolved.bitmap_downgrade is False

    def test_explicit_knobs_beat_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_ADAPTIVE_TRANSFER", "0")
        resolved = ExecutionConfig(adaptive_transfer=True).resolved()
        assert resolved.adaptive_transfer is True

    def test_schedule_helpers(self):
        forward = TransferStep("a", "b", ("x",), TransferPass.FORWARD)
        backward = TransferStep("b", "a", ("x",), TransferPass.BACKWARD)
        schedule = TransferSchedule(steps=(forward, backward))
        assert schedule.has_backward_pass
        assert schedule.sources_of_pass(TransferPass.BACKWARD) == frozenset({"b"})
        assert not schedule.without_backward_pass().has_backward_pass

    def test_adaptive_microbench_runs_small(self):
        from repro.bench import format_adaptive_microbench, run_adaptive_microbench

        measurements = run_adaptive_microbench(
            fact_rows=4_096, dim_rows=512, num_dims=2, repeats=1
        )
        assert {m.workload for m in measurements} == {"low_yield", "high_yield"}
        low = next(m for m in measurements if m.workload == "low_yield")
        assert low.steps_skipped > 0
        table = format_adaptive_microbench(measurements)
        assert "low_yield" in table and "high_yield" in table
        assert low.as_dict()["fact_rows"] == 4_096
