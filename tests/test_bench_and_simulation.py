"""Tests for the benchmark harness, report printers, microbenchmarks, and the
simulated parallel / spill models."""

from __future__ import annotations

import pytest

from repro import Database, ExecutionMode
from repro.bench import (
    WorkloadContext,
    average_speedups,
    format_case_study,
    format_distribution_series,
    format_probe_microbenchmark,
    format_robustness_factors,
    format_robustness_table,
    format_speedup_table,
    robustness_table,
    run_probe_microbenchmark,
    run_random_plan_experiment,
    run_speedup_experiment,
)
from repro.core import robustness_factor
from repro.errors import BenchmarkError
from repro.exec.parallel import ParallelismModel, simulate_parallel_cost
from repro.exec.spill import SpillConfig, peak_materialized_bytes, simulate_spill
from repro.workloads import synthetic, tpch


@pytest.fixture(scope="module")
def tpch_small() -> Database:
    db = Database()
    tpch.load(db, scale=0.05, seed=3)
    return db


class TestHarness:
    def test_random_plan_experiment(self, tpch_small):
        query = tpch.query(10)
        experiment = run_random_plan_experiment(
            tpch_small, query,
            modes=(ExecutionMode.BASELINE, ExecutionMode.RPT),
            num_plans=5, seed=1,
        )
        assert set(experiment.costs) == {ExecutionMode.BASELINE, ExecutionMode.RPT}
        assert len(experiment.costs[ExecutionMode.RPT]) == 5
        rf_base = experiment.robustness(ExecutionMode.BASELINE)
        rf_rpt = experiment.robustness(ExecutionMode.RPT)
        assert rf_base.factor >= 1.0 and rf_rpt.factor >= 1.0

    def test_random_plan_experiment_bushy(self, tpch_small):
        experiment = run_random_plan_experiment(
            tpch_small, tpch.query(3), modes=(ExecutionMode.RPT,), num_plans=4,
            plan_type="bushy", seed=2,
        )
        assert len(experiment.costs[ExecutionMode.RPT]) == 4

    def test_invalid_plan_type(self, tpch_small):
        with pytest.raises(BenchmarkError):
            run_random_plan_experiment(tpch_small, tpch.query(3), plan_type="zigzag", num_plans=2)

    def test_normalized_costs(self, tpch_small):
        experiment = run_random_plan_experiment(
            tpch_small, tpch.query(3), modes=(ExecutionMode.RPT,), num_plans=3, seed=0
        )
        normalized = experiment.normalized_costs(ExecutionMode.RPT, baseline_cost=100.0)
        assert len(normalized) == 3
        with pytest.raises(BenchmarkError):
            experiment.normalized_costs(ExecutionMode.RPT, baseline_cost=0.0)

    def test_speedup_experiment_and_table(self, tpch_small):
        queries = {f"q{n}": tpch.query(n) for n in (3, 10, 11)}
        results = run_speedup_experiment(tpch_small, queries)
        assert set(results) == set(queries)
        speedups = average_speedups(results)
        assert speedups[ExecutionMode.BASELINE] == pytest.approx(1.0)
        assert all(v > 0 for v in speedups.values())

    def test_robustness_table_and_exclusions(self, tpch_small):
        experiments = [
            run_random_plan_experiment(
                tpch_small, tpch.query(n), modes=(ExecutionMode.BASELINE, ExecutionMode.RPT),
                num_plans=4, seed=n,
            )
            for n in (3, 10)
        ]
        table = robustness_table(experiments, "TPC-H", (ExecutionMode.BASELINE, ExecutionMode.RPT))
        assert table[ExecutionMode.RPT].num_queries == 2
        with pytest.raises(BenchmarkError):
            robustness_table(experiments, "TPC-H", (ExecutionMode.RPT,),
                             exclude_queries=[e.query_name for e in experiments])

    def test_workload_context_caches(self):
        context = WorkloadContext(scale=0.05)
        db1 = context.database("tpch")
        db2 = context.database("tpch")
        assert db1 is db2
        assert len(context.queries("tpch")) == 20
        with pytest.raises(BenchmarkError):
            context.database("unknown")


class TestReporting:
    def test_robustness_table_format(self, tpch_small):
        experiment = run_random_plan_experiment(
            tpch_small, tpch.query(3), modes=(ExecutionMode.BASELINE, ExecutionMode.RPT),
            num_plans=3, seed=0,
        )
        table = robustness_table([experiment], "TPC-H", (ExecutionMode.BASELINE, ExecutionMode.RPT))
        text = format_robustness_table("Table 1", {"TPC-H": table},
                                       (ExecutionMode.BASELINE, ExecutionMode.RPT))
        assert "Table 1" in text and "DuckDB" in text and "RPT" in text

    def test_speedup_table_format(self):
        rows = {"TPC-H": {ExecutionMode.RPT: 1.5, ExecutionMode.PT: 1.4, ExecutionMode.BASELINE: 1.0}}
        text = format_speedup_table("Table 3", rows, (ExecutionMode.BASELINE, ExecutionMode.PT, ExecutionMode.RPT))
        assert "1.50x" in text and "RPT" in text

    def test_distribution_series_format(self):
        text = format_distribution_series("Fig 6", {"q3": {"DuckDB": [1.0, 2.0, 3.0], "RPT": [0.5, 0.6]}})
        assert "q3" in text and "DuckDB" in text

    def test_robustness_factors_format(self):
        text = format_robustness_factors("factors", [robustness_factor("q1", "rpt", [1.0, 1.2])])
        assert "q1" in text

    def test_case_study_format(self):
        text = format_case_study("Fig 11", {"best": {"intermediate": 10.0}, "worst": {"intermediate": 100.0}})
        assert "Fig 11" in text and "worst" in text


class TestMicrobenchmark:
    def test_probe_microbenchmark_runs(self):
        measurements = run_probe_microbenchmark(
            build_sizes=(128, 1024, 8192), probe_rows=50_000, repeats=1
        )
        assert len(measurements) == 3
        for m in measurements:
            assert m.hash_probe_seconds > 0
            assert m.bloom_probe_seconds > 0
            assert m.bloom_filter_bytes > 0
        text = format_probe_microbenchmark(measurements)
        assert "Figure 16" in text

    def test_bloom_probe_faster_for_large_build_sides(self):
        measurements = run_probe_microbenchmark(
            build_sizes=(65_536,), probe_rows=200_000, repeats=2
        )
        assert measurements[0].bloom_advantage > 1.0


class TestParallelSimulation:
    def test_more_threads_never_slower(self, tpch_small):
        result = tpch_small.execute(tpch.query(10), mode=ExecutionMode.RPT)
        one = simulate_parallel_cost(result.stats, ParallelismModel(num_threads=1))
        many = simulate_parallel_cost(result.stats, ParallelismModel(num_threads=32))
        assert many <= one

    def test_small_probe_sides_limit_scaling(self):
        """A tiny query cannot use 32 threads: speedup is far below 32x."""
        instance = synthetic.figure2_instance(base_size=50)
        result = instance.database.execute(instance.query, mode=ExecutionMode.RPT)
        one = simulate_parallel_cost(result.stats, ParallelismModel(num_threads=1, pipeline_overhead=0.0))
        many = simulate_parallel_cost(result.stats, ParallelismModel(num_threads=32, pipeline_overhead=0.0))
        assert one / max(many, 1e-9) < 32.0

    def test_baseline_variance_grows_with_threads(self, tpch_small):
        """Figure 14's observation also holds in the model: parallel costs still differ across plans."""
        from repro.optimizer import generate_left_deep_plans

        query = tpch.query(10)
        graph = tpch_small.join_graph(query)
        plans = generate_left_deep_plans(graph, 6, seed=4)
        costs = [
            simulate_parallel_cost(
                tpch_small.execute(query, mode=ExecutionMode.BASELINE, plan=p).stats,
                ParallelismModel(num_threads=32),
            )
            for p in plans
        ]
        assert max(costs) > min(costs)


class TestSpillSimulation:
    def test_spill_adds_io_time(self, tpch_small):
        result = tpch_small.execute(tpch.query(3), mode=ExecutionMode.RPT)
        added = simulate_spill(result.stats, result.relations, SpillConfig())
        assert added >= 0.0
        assert result.stats.timings.simulated_io == pytest.approx(added)

    def test_tighter_budget_more_io(self, tpch_small):
        r1 = tpch_small.execute(tpch.query(3), mode=ExecutionMode.RPT)
        r2 = tpch_small.execute(tpch.query(3), mode=ExecutionMode.RPT)
        loose = simulate_spill(r1.stats, r1.relations, SpillConfig(memory_budget_fraction=None))
        tight = simulate_spill(r2.stats, r2.relations, SpillConfig(memory_budget_fraction=0.2))
        assert tight >= loose

    def test_peak_bytes_positive(self, tpch_small):
        result = tpch_small.execute(tpch.query(3), mode=ExecutionMode.RPT)
        assert peak_materialized_bytes(result.stats, result.relations) > 0


class TestSyntheticInstances:
    def test_figure2_rpt_reduces_more_than_pt(self):
        instance = synthetic.figure2_instance(base_size=120)
        db, query = instance.database, instance.query
        pt = db.execute(query, mode=ExecutionMode.PT)
        rpt = db.execute(query, mode=ExecutionMode.RPT)
        assert pt.aggregates == rpt.aggregates
        # RPT's full reduction shrinks T at least as much as PT's incomplete one.
        assert rpt.stats.reduced_rows["t"] <= pt.stats.reduced_rows["t"]

    def test_figure12_quadratic_blowup_only_without_rpt(self):
        instance = synthetic.figure12_instance(n=400)
        db, query = instance.database, instance.query
        from repro.plan.join_plan import JoinPlan

        bad_plan = JoinPlan.from_left_deep(("r", "s", "t"))
        baseline = db.execute(query, mode=ExecutionMode.BASELINE, plan=bad_plan)
        rpt = db.execute(query, mode=ExecutionMode.RPT, plan=bad_plan)
        assert baseline.stats.output_rows == 0 and rpt.stats.output_rows == 0
        assert baseline.stats.total_intermediate_rows >= (400 // 2) ** 2 // 2
        assert rpt.stats.total_intermediate_rows == 0

    def test_unsafe_subjoin_instance_classification(self):
        from repro.core import is_alpha_acyclic, is_gamma_acyclic

        instance = synthetic.unsafe_subjoin_instance(n=100)
        graph = instance.database.join_graph(instance.query)
        assert is_alpha_acyclic(graph)
        assert not is_gamma_acyclic(graph)
