"""Unit and property tests for the blocked Bloom filter and the filter registry."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bloom import BloomFilter, BloomFilterRegistry, FilterKey, optimal_num_blocks
from repro.errors import ExecutionError


class TestSizing:
    def test_zero_keys(self):
        assert optimal_num_blocks(0, 0.02) == 1

    def test_power_of_two(self):
        for n in (10, 1_000, 50_000):
            blocks = optimal_num_blocks(n, 0.02)
            assert blocks & (blocks - 1) == 0

    def test_more_keys_more_blocks(self):
        assert optimal_num_blocks(100_000, 0.02) > optimal_num_blocks(1_000, 0.02)

    def test_lower_fpr_more_blocks(self):
        assert optimal_num_blocks(10_000, 0.001) > optimal_num_blocks(10_000, 0.05)

    def test_invalid_fpr_raises(self):
        with pytest.raises(ExecutionError):
            optimal_num_blocks(10, 1.5)


class TestBloomFilter:
    def test_no_false_negatives_basic(self):
        keys = np.arange(0, 5_000, dtype=np.int64)
        bloom = BloomFilter(expected_keys=len(keys))
        bloom.insert(keys)
        assert bloom.probe(keys).all()

    def test_false_positive_rate_reasonable(self):
        rng = np.random.default_rng(0)
        inserted = rng.integers(0, 2**40, size=20_000, dtype=np.int64)
        bloom = BloomFilter(expected_keys=len(inserted), fpr=0.02)
        bloom.insert(inserted)
        absent = rng.integers(2**41, 2**42, size=50_000, dtype=np.int64)
        fpr = bloom.probe(absent).mean()
        # Blocked filters are a bit worse than the ideal; allow generous slack.
        assert fpr < 0.12

    def test_empty_probe(self):
        bloom = BloomFilter(expected_keys=10)
        assert bloom.probe(np.array([], dtype=np.int64)).shape == (0,)

    def test_empty_filter_rejects_most_keys(self):
        bloom = BloomFilter(expected_keys=1000)
        keys = np.arange(1000, dtype=np.int64)
        assert bloom.probe(keys).sum() == 0

    def test_contains_scalar(self):
        bloom = BloomFilter(expected_keys=10)
        bloom.insert(np.array([42], dtype=np.int64))
        assert bloom.contains(42)

    def test_negative_keys_supported(self):
        keys = np.array([-1, -1000, -(2**40)], dtype=np.int64)
        bloom = BloomFilter(expected_keys=3)
        bloom.insert(keys)
        assert bloom.probe(keys).all()

    def test_statistics_counters(self):
        bloom = BloomFilter(expected_keys=100)
        bloom.insert(np.arange(100, dtype=np.int64))
        bloom.probe(np.arange(50, dtype=np.int64))
        assert bloom.statistics.keys_inserted == 100
        assert bloom.statistics.keys_probed == 50
        assert bloom.statistics.probes_passed == 50
        assert bloom.statistics.observed_pass_rate == 1.0

    def test_union_requires_same_geometry(self):
        a = BloomFilter(expected_keys=100, num_blocks=16)
        b = BloomFilter(expected_keys=100, num_blocks=32)
        with pytest.raises(ExecutionError):
            a.union_inplace(b)

    def test_union_combines_membership(self):
        a = BloomFilter(expected_keys=100, num_blocks=64)
        b = BloomFilter(expected_keys=100, num_blocks=64)
        a.insert(np.array([1, 2, 3], dtype=np.int64))
        b.insert(np.array([100, 200], dtype=np.int64))
        a.union_inplace(b)
        assert a.probe(np.array([1, 2, 3, 100, 200], dtype=np.int64)).all()

    def test_fill_ratio_increases(self):
        bloom = BloomFilter(expected_keys=1000)
        before = bloom.fill_ratio
        bloom.insert(np.arange(1000, dtype=np.int64))
        assert bloom.fill_ratio > before

    def test_size_bytes(self):
        bloom = BloomFilter(expected_keys=1000)
        assert bloom.size_bytes == bloom.num_blocks * 8

    @given(
        st.lists(st.integers(min_value=-(2**62), max_value=2**62 - 1), min_size=1, max_size=500),
        st.lists(st.integers(min_value=-(2**62), max_value=2**62 - 1), max_size=500),
    )
    @settings(max_examples=60, deadline=None)
    def test_no_false_negatives_property(self, inserted, probed):
        """A Bloom filter may return false positives but never false negatives."""
        bloom = BloomFilter(expected_keys=len(inserted))
        bloom.insert(np.asarray(inserted, dtype=np.int64))
        probe_keys = np.asarray(inserted + probed, dtype=np.int64)
        hits = bloom.probe(probe_keys)
        assert hits[: len(inserted)].all()


class TestRegistry:
    def test_publish_and_lookup(self):
        registry = BloomFilterRegistry()
        bloom = BloomFilter(expected_keys=10)
        key = FilterKey("orders", "o_custkey", "forward")
        registry.publish(key, bloom)
        assert registry.lookup(key) is bloom
        assert key in registry
        assert len(registry) == 1
        assert registry.total_bytes() == bloom.size_bytes

    def test_double_publish_raises_unless_replace(self):
        registry = BloomFilterRegistry()
        key = FilterKey("r", "a")
        registry.publish(key, BloomFilter(expected_keys=1))
        with pytest.raises(ExecutionError):
            registry.publish(key, BloomFilter(expected_keys=1))
        registry.publish(key, BloomFilter(expected_keys=2), replace=True)

    def test_missing_lookup_raises(self):
        registry = BloomFilterRegistry()
        with pytest.raises(ExecutionError):
            registry.lookup(FilterKey("r", "a"))
        assert registry.get(FilterKey("r", "a")) is None

    def test_pass_id_distinguishes_filters(self):
        registry = BloomFilterRegistry()
        forward = FilterKey("r", "a", "forward")
        backward = FilterKey("r", "a", "backward")
        registry.publish(forward, BloomFilter(expected_keys=1))
        registry.publish(backward, BloomFilter(expected_keys=1))
        assert len(registry) == 2

    def test_clear(self):
        registry = BloomFilterRegistry()
        registry.publish(FilterKey("r", "a"), BloomFilter(expected_keys=1))
        registry.clear()
        assert len(registry) == 0
