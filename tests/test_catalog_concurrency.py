"""Thread-safety hammers for the catalog, snapshots, and encoding store.

These tests drive the MVCC-lite layer from many threads at once: readers
must never observe a torn catalog entry, snapshots must keep replaced
versions alive until the last reader releases them, and the encoding store
must survive invalidation racing encoded-column lookups. Failures here are
the classic symptoms — ``KeyError`` escaping a lookup, a decode against a
freed version, pin/retain counters that do not return to zero.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro import Database
from repro.engine.database import ExecutionOptions
from repro.engine.modes import ExecutionConfig
from repro.errors import CatalogError
from repro.storage import Catalog, Table

N_THREADS = 8
N_ITERS = 60


def _table(name: str, generation: int, rows: int = 256) -> Table:
    rng = np.random.default_rng(generation)
    return Table.from_dict(
        name,
        {
            "id": np.arange(rows, dtype=np.int64),
            "generation": np.full(rows, generation, dtype=np.int64),
            "v": rng.integers(0, 100, rows).astype(np.int64),
        },
        primary_key=["id"],
    )


def _run_threads(targets):
    errors = []

    def wrap(fn):
        def runner():
            try:
                fn()
            except Exception as exc:  # noqa: BLE001 - hammer collects everything
                errors.append(exc)

        return runner

    threads = [threading.Thread(target=wrap(fn)) for fn in targets]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return errors


class TestCatalogHammer:
    def test_register_replace_races_lookup(self):
        """Writers replacing a table never tear concurrent readers."""
        catalog = Catalog()
        catalog.register(_table("t", 0))
        stop = threading.Event()

        def writer():
            for generation in range(1, N_ITERS + 1):
                catalog.register(_table("t", generation), replace=True)
            stop.set()

        def reader():
            while not stop.is_set():
                table = catalog.table("t")
                # A torn entry would mix generations between the column data
                # and the statistics/version bookkeeping.
                generations = np.unique(table.column("generation").data)
                assert len(generations) == 1
                assert catalog.version("t") >= 1 or generations[0] == 0
                stats = catalog.statistics("t")
                assert stats.num_rows == table.num_rows

        errors = _run_threads([writer] + [reader] * (N_THREADS - 1))
        assert not errors, errors
        assert catalog.version("t") == N_ITERS + 1
        assert catalog.table("t").column("generation").data[0] == N_ITERS

    def test_snapshot_pin_release_hammer(self):
        """Concurrent pin/replace/release converges to zero pins and retained versions."""
        catalog = Catalog()
        catalog.register(_table("t", 0))

        def writer():
            for generation in range(1, N_ITERS + 1):
                catalog.register(_table("t", generation), replace=True)

        def pinner():
            for _ in range(N_ITERS):
                with catalog.snapshot(["t"]) as snap:
                    table = snap.table("t")
                    # The snapshot must keep serving the pinned version even
                    # while the writer replaces it underneath.
                    assert snap.version("t") <= catalog.version("t")
                    assert table.column("generation").data[0] == table.column(
                        "generation"
                    ).data[-1]

        errors = _run_threads([writer] + [pinner] * (N_THREADS - 1))
        assert not errors, errors
        assert catalog.pinned_version_count() == 0
        assert catalog.retained_version_count() == 0

    def test_snapshot_outlives_replace_and_releases_retained_version(self):
        catalog = Catalog()
        catalog.register(_table("t", 0))
        snap = catalog.snapshot(["t"])
        catalog.register(_table("t", 1), replace=True)
        # The replaced version stays retained while the snapshot reads it.
        assert catalog.retained_version_count() == 1
        assert snap.table("t").column("generation").data[0] == 0
        assert catalog.table("t").column("generation").data[0] == 1
        snap.release()
        snap.release()  # idempotent
        assert catalog.pinned_version_count() == 0
        assert catalog.retained_version_count() == 0
        with pytest.raises(CatalogError, match="not in this snapshot"):
            snap.table("other")

    def test_unregister_while_pinned_retains_until_release(self):
        catalog = Catalog()
        catalog.register(_table("t", 7))
        snap = catalog.snapshot(["t"])
        catalog.unregister("t")
        assert not catalog.has_table("t")
        assert snap.table("t").column("generation").data[0] == 7
        snap.release()
        assert catalog.retained_version_count() == 0


class TestEncodingStoreHammer:
    def test_invalidation_races_encoded_lookup(self):
        """encoded()/zone_map() racing invalidate_table never tears or errors."""
        catalog = Catalog()
        catalog.register(_table("t", 0, rows=2048))
        store = catalog.encodings
        stop = threading.Event()

        def writer():
            for generation in range(1, 24):
                catalog.register(_table("t", generation, rows=2048), replace=True)
            stop.set()

        def reader():
            while not stop.is_set():
                table = catalog.table("t")
                encoded = store.encoded(table, "generation")
                if encoded is not None:
                    decoded = np.unique(encoded.decode())
                    # An encoding built for one version must never be served
                    # for another: decode matches exactly one generation.
                    assert len(decoded) == 1
                zone = store.zone_map(table, "v")
                if zone is not None:
                    assert zone.num_rows == table.num_rows

        errors = _run_threads([writer] + [reader] * (N_THREADS - 1))
        assert not errors, errors

    def test_invalidation_races_filter_evaluation(self):
        """Replacing a table mid-query (encodings on) stays bit-identical.

        The writer re-registers identical data, so whichever version a
        racing query lands on, its result must equal the baseline — any
        divergence means ``_evaluate_filters`` consumed a torn or stale
        encoding for the wrong version.
        """
        db = Database()
        rows = 4096
        data = {
            "id": np.arange(rows, dtype=np.int64),
            "grp": (np.arange(rows, dtype=np.int64) % 13),
            "v": (np.arange(rows, dtype=np.int64) * 31 % 997),
        }
        db.register_dataframe("t", data, primary_key=["id"])
        options = ExecutionOptions(
            execution=ExecutionConfig(backend="serial", encodings=True)
        )
        text = "SELECT COUNT(*) AS n, SUM(v) AS s FROM t WHERE grp < 7 AND v > 100"
        baseline = db.sql(text, options=options)
        stop = threading.Event()

        def writer():
            for _ in range(20):
                db.register_dataframe("t", data, primary_key=["id"], replace=True)
            stop.set()

        def reader():
            while not stop.is_set():
                result = db.sql(text, options=options)
                assert result.aggregates == baseline.aggregates

        errors = _run_threads([writer] + [reader] * (N_THREADS - 1))
        assert not errors, errors
        assert db.catalog.pinned_version_count() == 0
        assert db.catalog.retained_version_count() == 0
        db.close()
