"""Unit tests for data chunks, selection vectors, and the DuckDB-style operators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bloom import BloomFilter, BloomFilterRegistry, FilterKey
from repro.errors import ExecutionError
from repro.exec.chunk import DEFAULT_CHUNK_SIZE, DataChunk, iter_chunks, num_chunks
from repro.exec.operators import (
    CreateBF,
    FilterOperator,
    HashJoinBuild,
    HashJoinProbe,
    Pipeline,
    ProbeBF,
    TableScan,
)
from repro.expr import gt
from repro.storage import Table


class TestDataChunk:
    def test_sizes_and_column_access(self):
        chunk = DataChunk(columns={"a": np.array([1, 2, 3]), "b": np.array([4, 5, 6])})
        assert chunk.physical_size == 3
        assert chunk.size == 3
        assert chunk.column("a").tolist() == [1, 2, 3]
        with pytest.raises(ExecutionError):
            chunk.column("missing")

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ExecutionError):
            DataChunk(columns={"a": np.array([1]), "b": np.array([1, 2])})

    def test_apply_mask_refines_selection(self):
        chunk = DataChunk(columns={"a": np.arange(6)})
        chunk = chunk.apply_mask(np.array([True, False, True, True, False, True]))
        assert chunk.size == 4
        assert chunk.column("a").tolist() == [0, 2, 3, 5]
        chunk = chunk.apply_mask(np.array([False, True, True, False]))
        assert chunk.column("a").tolist() == [2, 3]

    def test_apply_mask_wrong_length_raises(self):
        chunk = DataChunk(columns={"a": np.arange(3)})
        with pytest.raises(ExecutionError):
            chunk.apply_mask(np.array([True]))

    def test_compact(self):
        chunk = DataChunk(columns={"a": np.arange(5)}).apply_mask(np.array([True, False, False, True, True]))
        compacted = chunk.compact()
        assert compacted.selection is None
        assert compacted.column("a").tolist() == [0, 3, 4]

    def test_iter_chunks_and_counts(self):
        data = {"a": np.arange(10)}
        chunks = list(iter_chunks(data, chunk_size=4))
        assert [c.size for c in chunks] == [4, 4, 2]
        assert num_chunks(10, 4) == 3
        assert num_chunks(0, 4) == 0
        assert num_chunks(1) == 1
        with pytest.raises(ExecutionError):
            list(iter_chunks(data, chunk_size=0))


@pytest.fixture()
def people_table() -> Table:
    return Table.from_dict(
        "people",
        {"id": list(range(1, 101)), "age": [20 + (i % 50) for i in range(100)]},
        primary_key=["id"],
    )


class TestOperators:
    def test_table_scan_chunks(self, people_table):
        scan = TableScan(table=people_table, alias="p", chunk_size=30)
        chunks = list(scan.get_data())
        assert sum(c.size for c in chunks) == 100
        assert "p.id" in chunks[0].columns

    def test_filter_operator(self, people_table):
        scan = TableScan(table=people_table, alias="p", chunk_size=40)
        filter_op = FilterOperator(predicate=gt("age", 60), table=people_table, alias="p")
        pipeline = Pipeline(source=scan, operators=[filter_op])
        output = pipeline.run()
        total = sum(c.size for c in output)
        expected = sum(1 for i in range(100) if 20 + (i % 50) > 60)
        assert total == expected

    def test_create_bf_then_probe_bf(self, people_table):
        registry = BloomFilterRegistry()
        key = FilterKey("p", "id")
        create = CreateBF(registry=registry, filter_key=key, key_column="p.id")
        Pipeline(source=TableScan(table=people_table, alias="p", chunk_size=33), sink=create).run()
        assert key in registry
        assert create.buffered_rows == 100

        # CreateBF then acts as a source feeding a ProbeBF against its own filter.
        probe = ProbeBF(registry=registry, probes=[(key, "p.id")])
        output = Pipeline(source=create, operators=[probe]).run()
        assert sum(c.size for c in output) == 100  # no false negatives

    def test_create_bf_requires_finalize_before_source(self, people_table):
        registry = BloomFilterRegistry()
        create = CreateBF(registry=registry, filter_key=FilterKey("p", "id"), key_column="p.id")
        with pytest.raises(ExecutionError):
            list(create.get_data())

    def test_probe_bf_filters_misses(self, people_table):
        registry = BloomFilterRegistry()
        key = FilterKey("dim", "id")
        bloom = BloomFilter(expected_keys=10)
        bloom.insert(np.arange(1, 11, dtype=np.int64))  # only ids 1..10
        registry.publish(key, bloom)
        probe = ProbeBF(registry=registry, probes=[(key, "p.id")])
        output = Pipeline(
            source=TableScan(table=people_table, alias="p", chunk_size=25),
            operators=[probe],
        ).run()
        survivors = sum(c.size for c in output)
        assert 10 <= survivors <= 25  # all true matches plus a small number of false positives

    def test_hash_join_operators(self, people_table):
        orders = Table.from_dict(
            "orders",
            {"person_id": [1, 1, 2, 3, 999], "amount": [10, 20, 30, 40, 50]},
        )
        build = HashJoinBuild(key_column="p.id")
        Pipeline(source=TableScan(table=people_table, alias="p", chunk_size=64), sink=build).run()
        probe = HashJoinProbe(build=build, probe_key_column="o.person_id", build_payload_columns=["p.age"])
        output = Pipeline(
            source=TableScan(table=orders, alias="o", chunk_size=3),
            operators=[probe],
        ).run()
        joined_rows = sum(c.size for c in output)
        assert joined_rows == 4  # person_id 999 has no match
        assert any("p.age" in c.columns for c in output)

    def test_hash_join_build_requires_finalize(self):
        build = HashJoinBuild(key_column="x")
        with pytest.raises(ExecutionError):
            _ = build.keys
