"""Encoded execution is bit-identical to raw across modes, backends, workloads.

``ExecutionConfig.encodings`` swaps the base-filter path to code-space
kernels with zone-map block skipping, ships bit-packed columns through the
shared-memory arena, and feeds zone-map row bounds to the optimizer — all
of which must leave every query result bit-for-bit unchanged.  The matrix
below runs synthetic (IMDB-shaped), TPC-H and JOB queries under all five
execution modes and three backends and compares aggregates against the
raw serial baseline.  The satellites are covered alongside: plans are
unchanged when encodings are off, zone bounds drop impossible predicates
to a zero estimate (past the 1-row floor), EXPLAIN carries the
``[zm skip]`` marker, fused kernels count skipped blocks exactly, and the
artifact cache never aliases raw and encoded passes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import Database, ExecutionMode, ExecutionOptions
from repro.engine.modes import ExecutionConfig
from repro.expr import between, eq, lt
from repro.optimizer.cardinality import CardinalityEstimator
from repro.query import JoinCondition, QuerySpec, RelationRef
from repro.workloads import job, tpch

BACKENDS = ("serial", "chunked", "process")


def _options(backend: str, *, encodings: bool, **kwargs) -> ExecutionOptions:
    if backend == "process":
        kwargs.setdefault("num_workers", 2)
        kwargs.setdefault("chunk_size", 512)  # tiny morsel so fan-out happens
    return ExecutionOptions(
        execution=ExecutionConfig(backend=backend, encodings=encodings, **kwargs)
    )


def _sorted_star_db(fact_rows: int = 20_000, dim_rows: int = 2_000, seed: int = 13):
    """A star join whose fact table has a sorted (zone-map friendly) column."""
    rng = np.random.default_rng(seed)
    db = Database()
    db.register_dataframe(
        "dim",
        {
            "id": np.arange(dim_rows, dtype=np.int64),
            "attr": rng.integers(0, 100, size=dim_rows, dtype=np.int64),
        },
        primary_key=["id"],
    )
    db.register_dataframe(
        "fact",
        {
            "ts": np.arange(fact_rows, dtype=np.int64),
            "d_id": rng.integers(0, dim_rows, size=fact_rows, dtype=np.int64),
        },
    )
    query = QuerySpec(
        name="sorted_star",
        relations=(
            RelationRef("f", "fact", between("ts", 1_000, 2_999)),
            RelationRef("d", "dim", lt("attr", 50)),
        ),
        joins=(JoinCondition("f", "d_id", "d", "id"),),
    )
    return db, query


# ---------------------------------------------------------------------------
# Bit-identity matrix: modes x backends x workloads
# ---------------------------------------------------------------------------
class TestBitIdentityMatrix:
    def _assert_matrix(self, db, query, all_modes):
        baseline = db.execute(
            query, mode=ExecutionMode.BASELINE, options=_options("serial", encodings=False)
        )
        for mode in all_modes:
            for backend in BACKENDS:
                result = db.execute(query, mode=mode, options=_options(backend, encodings=True))
                assert result.aggregates == baseline.aggregates, (
                    f"{query.name} diverged under {mode.name}/{backend} with encodings on"
                )
                assert result.stats.output_rows == baseline.stats.output_rows

    def test_synthetic_star_and_chain(self, imdb_db, star_query, chain_query, all_modes):
        self._assert_matrix(imdb_db, star_query, all_modes)
        self._assert_matrix(imdb_db, chain_query, all_modes)

    def test_tpch(self, tpch_db, all_modes):
        self._assert_matrix(tpch_db, tpch.all_queries()["q3"], all_modes)

    def test_job(self, job_db, all_modes):
        name, query = sorted(job.all_queries().items())[0]
        self._assert_matrix(job_db, query, all_modes)

    def test_tpch_serial_sweep_stays_identical(self, tpch_db, all_modes):
        # A wider query sweep on the serial backend only (cheap): every mode,
        # encodings on vs off, per query.
        for qname in ("q5", "q10"):
            query = tpch.all_queries()[qname]
            baseline = tpch_db.execute(
                query, mode=ExecutionMode.BASELINE, options=_options("serial", encodings=False)
            )
            for mode in all_modes:
                result = tpch_db.execute(
                    query, mode=mode, options=_options("serial", encodings=True)
                )
                assert result.aggregates == baseline.aggregates, f"{qname} under {mode.name}"


# ---------------------------------------------------------------------------
# Optimizer integration: zone-map row bounds
# ---------------------------------------------------------------------------
class TestZoneBoundCardinality:
    def test_plans_identical_when_encodings_off(self, tpch_db):
        for qname, query in tpch.all_queries().items():
            default_plan = tpch_db.optimizer_plan(query)
            off_plan = tpch_db.optimizer_plan(
                query, options=ExecutionOptions(execution=ExecutionConfig(encodings=False))
            )
            assert default_plan.describe() == off_plan.describe(), qname

    def test_impossible_predicate_estimates_zero(self):
        db, _ = _sorted_star_db()
        try:
            query = QuerySpec(
                name="impossible",
                relations=(
                    RelationRef("f", "fact", between("ts", -500, -1)),
                    RelationRef("d", "dim"),
                ),
                joins=(JoinCondition("f", "d_id", "d", "id"),),
            )
            bounds = db._zone_row_bounds(query)
            assert bounds["f"] == 0
            graph = db.join_graph(query)
            floored = CardinalityEstimator(db.catalog, query, graph)
            assert floored.base_cardinality("f") >= 1.0  # the textbook floor
            bounded = CardinalityEstimator(
                db.catalog, query, graph, rows_upper_bounds=bounds
            )
            assert bounded.base_cardinality("f") == 0.0  # zone maps beat the floor
            # The end-to-end result is still exact: zero rows come out.
            result = db.execute(query, options=_options("serial", encodings=True))
            baseline = db.execute(query, options=_options("serial", encodings=False))
            assert result.aggregates == baseline.aggregates
        finally:
            db.close()

    def test_bound_caps_but_never_raises_estimates(self):
        db, query = _sorted_star_db()
        try:
            bounds = db._zone_row_bounds(query)
            # between("ts", 1000, 2999) on sorted data: the surviving-block
            # bound must cover all 2000 matching rows but stay far below the
            # 20000-row table.
            assert 2_000 <= bounds["f"] <= 4_096 * 2
            graph = db.join_graph(query)
            plain = CardinalityEstimator(db.catalog, query, graph)
            bounded = CardinalityEstimator(db.catalog, query, graph, rows_upper_bounds=bounds)
            for alias in ("f", "d"):
                assert bounded.base_cardinality(alias) <= plain.base_cardinality(alias)
        finally:
            db.close()


# ---------------------------------------------------------------------------
# EXPLAIN and trace markers
# ---------------------------------------------------------------------------
class TestTraceMarkers:
    def test_explain_and_execute_carry_zone_skip_marker(self):
        db, query = _sorted_star_db()
        try:
            explained = db.explain(query, options=_options("serial", encodings=True))
            assert "[zm skip" in explained.stats.op_trace()
            raw_explained = db.explain(query, options=_options("serial", encodings=False))
            assert "[zm skip" not in raw_explained.stats.op_trace()

            result = db.execute(query, options=_options("serial", encodings=True))
            assert "[zm skip" in result.stats.op_trace()
            assert result.stats.zone_blocks_skipped > 0
            assert result.stats.zone_blocks_skipped < result.stats.zone_blocks_total
        finally:
            db.close()


# ---------------------------------------------------------------------------
# Fused kernels under block selections
# ---------------------------------------------------------------------------
class TestFusedWithEncodings:
    def test_skipped_blocks_counted_exactly(self):
        n = 8 * 4_096
        db = Database()
        try:
            db.register_dataframe(
                "t",
                {"ts": np.arange(n, dtype=np.int64), "flag": np.ones(n, dtype=np.int64)},
            )
            query = QuerySpec(
                name="fused",
                relations=(RelationRef("t", "t", between("ts", 0, 4_095) & eq("flag", 1)),),
                joins=(),
            )
            fused_raw = db.execute(
                query, options=_options("serial", encodings=False, fuse_filters=True)
            )
            fused_enc = db.execute(
                query, options=_options("serial", encodings=True, fuse_filters=True)
            )
            assert fused_enc.aggregates == fused_raw.aggregates
            # Only the first block survives pruning, so the encoded fused run
            # short-circuits exactly the 7 skipped blocks' rows on top of the
            # raw fused run's progressive-selection savings.
            skipped_rows = n - 4_096
            assert (
                fused_enc.stats.fused_rows_short_circuited
                - fused_raw.stats.fused_rows_short_circuited
                == skipped_rows
            )
            assert fused_enc.stats.zone_blocks_skipped == 7
            assert fused_enc.stats.zone_blocks_total == 8
        finally:
            db.close()


# ---------------------------------------------------------------------------
# Cache keying across encoding toggles
# ---------------------------------------------------------------------------
class TestCacheKeying:
    def test_artifact_cache_never_aliases_raw_and_encoded(self):
        db, query = _sorted_star_db()
        try:
            def run(encodings: bool):
                return db.execute(
                    query,
                    mode=ExecutionMode.RPT,
                    options=_options("serial", encodings=encodings, artifact_cache=True),
                )

            cold = run(False)
            warm_raw = run(True)  # encoded keys must not serve the raw artifacts
            warm_enc = run(True)
            warm_raw_again = run(False)  # raw keys must still be warm
            for result in (warm_raw, warm_enc, warm_raw_again):
                assert result.aggregates == cold.aggregates
            assert warm_enc.stats.artifact_cache_hits > 0
            assert warm_raw_again.stats.artifact_cache_hits > 0
        finally:
            db.close()


# ---------------------------------------------------------------------------
# Environment knob
# ---------------------------------------------------------------------------
class TestEnvKnob:
    def test_repro_encodings_env_flag(self, monkeypatch):
        monkeypatch.delenv("REPRO_ENCODINGS", raising=False)
        assert ExecutionConfig().resolved().encodings is False
        monkeypatch.setenv("REPRO_ENCODINGS", "1")
        assert ExecutionConfig().resolved().encodings is True
        monkeypatch.setenv("REPRO_ENCODINGS", "0")
        assert ExecutionConfig().resolved().encodings is False
        # An explicit config wins over the environment.
        monkeypatch.setenv("REPRO_ENCODINGS", "1")
        assert ExecutionConfig(encodings=False).resolved().encodings is False
