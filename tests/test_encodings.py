"""Block encodings: selection rules, lossless round-trips, zone-map skips.

The contract under test: every encoding :func:`choose_encoding` picks is
lossless (``decode`` reproduces the physical ``int64`` values bit-for-bit,
with or without a selection), the chooser only encodes when it wins at
least :data:`MIN_COMPRESSION_RATIO`, zone maps skip a block *iff* no row
in it can match, and the catalog's :class:`EncodingStore` never serves a
stale encoding across a table replace.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Database
from repro.expr import between, codespace, contains, eq, isin, lt
from repro.storage.column import Column
from repro.storage.encodings import (
    MAX_DICT_NDV,
    MIN_COMPRESSION_RATIO,
    EncodedColumn,
    choose_encoding,
)
from repro.storage.zonemap import DEFAULT_BLOCK_ROWS, ZoneMap


def _encode(values, **kwargs) -> EncodedColumn:
    encoded = choose_encoding(Column.from_values("x", values), **kwargs)
    assert encoded is not None
    return encoded


# ---------------------------------------------------------------------------
# Selection rules
# ---------------------------------------------------------------------------
class TestChooseEncoding:
    def test_sorted_low_cardinality_picks_rle(self):
        values = np.repeat(np.arange(8, dtype=np.int64), 1000)
        encoded = _encode(values)
        assert encoded.encoding == "rle"
        assert encoded.codes.shape[0] == 8  # one run per distinct value
        assert encoded.token == "rle:r8"

    def test_narrow_range_picks_pack(self):
        rng = np.random.default_rng(1)
        values = rng.integers(10_000, 10_200, size=4000, dtype=np.int64)
        encoded = _encode(values)
        assert encoded.encoding == "pack"
        assert encoded.codes.dtype == np.uint8
        assert encoded.base == int(values.min())
        assert encoded.token.startswith("pack:u8:b")

    def test_low_ndv_wide_domain_picks_dict(self):
        rng = np.random.default_rng(2)
        domain = rng.integers(-(2**60), 2**60, size=50, dtype=np.int64)
        values = domain[rng.integers(0, 50, size=4000)]
        encoded = _encode(values)
        assert encoded.encoding == "dict"
        assert encoded.codes.dtype == np.uint8
        assert np.array_equal(encoded.values, np.unique(values))

    def test_high_entropy_wide_domain_stays_raw(self):
        rng = np.random.default_rng(3)
        values = rng.integers(-(2**60), 2**60, size=4000, dtype=np.int64)
        assert choose_encoding(Column.from_values("x", values)) is None

    def test_marginal_compression_stays_raw(self):
        # 33-bit range: packing needs int64 anyway; high NDV kills dict/rle.
        rng = np.random.default_rng(4)
        values = rng.integers(0, 1 << 33, size=4000, dtype=np.int64)
        assert choose_encoding(Column.from_values("x", values)) is None

    def test_float_and_empty_stay_raw(self):
        assert choose_encoding(Column.from_values("x", [1.5, 2.5])) is None
        empty = Column.from_values("x", [1]).filter(np.array([False]))
        assert choose_encoding(empty) is None

    def test_ndv_estimate_over_dict_limit_falls_back_to_pack(self):
        # Caller claims a tiny NDV, but the true dictionary is too large:
        # the exact pass must detect it and fall back to bit-packing.
        rng = np.random.default_rng(5)
        values = rng.integers(0, 1 << 20, size=2 * MAX_DICT_NDV, dtype=np.int64)
        encoded = choose_encoding(Column.from_values("x", values), distinct_count=10)
        assert encoded is not None
        assert encoded.encoding == "pack"

    def test_string_column_codes_are_encodable(self):
        values = ["apple", "banana", "cherry"] * 500
        encoded = _encode(values)
        assert encoded.encoding in ("pack", "dict", "rle")
        col = Column.from_values("x", values)
        np.testing.assert_array_equal(encoded.decode(), col.data)

    def test_compression_ratio_floor_holds(self):
        for values in (
            np.repeat(np.arange(8, dtype=np.int64), 1000),
            np.random.default_rng(6).integers(0, 100, size=4000, dtype=np.int64),
        ):
            encoded = _encode(values)
            assert encoded.encoded_bytes * MIN_COMPRESSION_RATIO <= encoded.logical_bytes


# ---------------------------------------------------------------------------
# Lossless round-trips
# ---------------------------------------------------------------------------
class TestRoundTrip:
    @pytest.mark.parametrize(
        "maker",
        [
            lambda rng, n: np.sort(rng.integers(0, 20, size=n, dtype=np.int64)),  # rle
            lambda rng, n: rng.integers(-50, 50, size=n, dtype=np.int64),  # pack
            lambda rng, n: rng.choice(  # dict
                rng.integers(-(2**60), 2**60, size=30, dtype=np.int64), size=n
            ),
        ],
        ids=["rle", "pack", "dict"],
    )
    def test_decode_full_and_selected(self, maker):
        rng = np.random.default_rng(7)
        for n in (1, 100, 5000):
            values = maker(rng, n)
            encoded = choose_encoding(Column.from_values("x", values), block_rows=64)
            if encoded is None:
                continue
            np.testing.assert_array_equal(encoded.decode(), values)
            for size in (0, 1, n // 2, n):
                selection = np.sort(rng.integers(0, n, size=size, dtype=np.int64))
                np.testing.assert_array_equal(encoded.decode(selection), values[selection])

    @given(
        st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=300),
        st.booleans(),
    )
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, values, sort):
        data = np.asarray(sorted(values) if sort else values, dtype=np.int64)
        encoded = choose_encoding(Column.from_values("x", data), block_rows=16)
        if encoded is None:
            return
        np.testing.assert_array_equal(encoded.decode(), data)
        selection = np.arange(0, data.shape[0], 2, dtype=np.int64)
        np.testing.assert_array_equal(encoded.decode(selection), data[selection])

    def test_iter_blocks_covers_column(self):
        values = np.repeat(np.arange(5, dtype=np.int64), 700)
        for block_rows in (64, 4096):
            encoded = choose_encoding(Column.from_values("x", values), block_rows=block_rows)
            assert encoded is not None
            pieces = []
            for start, block in encoded.iter_blocks():
                assert start == sum(len(p) for p in pieces)
                pieces.append(block)
            if encoded.encoding == "rle":
                reassembled = np.concatenate(pieces)
            else:
                reassembled = encoded.values[np.concatenate(pieces)] if (
                    encoded.encoding == "dict"
                ) else np.concatenate(pieces).astype(np.int64) + encoded.base
            np.testing.assert_array_equal(reassembled, values)


# ---------------------------------------------------------------------------
# Zone maps
# ---------------------------------------------------------------------------
class TestZoneMap:
    def test_skip_count_exact_on_sorted_data(self):
        n = 64 * DEFAULT_BLOCK_ROWS
        data = np.arange(n, dtype=np.int64)
        zm = ZoneMap.build(data)
        lo, hi = 5 * DEFAULT_BLOCK_ROWS, 7 * DEFAULT_BLOCK_ROWS - 1
        survivors = zm.survivors_range(lo, hi)
        # Ground truth per block: survives iff some row lies in [lo, hi].
        truth = np.array(
            [
                bool(np.any((chunk >= lo) & (chunk <= hi)))
                for chunk in np.split(data, np.arange(DEFAULT_BLOCK_ROWS, n, DEFAULT_BLOCK_ROWS))
            ]
        )
        np.testing.assert_array_equal(survivors, truth)
        assert int(np.count_nonzero(survivors)) == 2
        assert int(np.count_nonzero(~survivors)) == 62

    def test_shuffled_data_skips_nothing_sorted_skips_most(self):
        rng = np.random.default_rng(8)
        sorted_data = np.sort(rng.integers(0, 1 << 30, size=32 * DEFAULT_BLOCK_ROWS))
        shuffled = rng.permutation(sorted_data)
        lo = int(sorted_data[sorted_data.shape[0] // 2])
        hi = int(sorted_data[sorted_data.shape[0] // 2 + 100])
        sorted_survivors = ZoneMap.build(sorted_data).survivors_range(lo, hi)
        shuffled_survivors = ZoneMap.build(shuffled).survivors_range(lo, hi)
        # Same rows match either way; only clustering enables skips.
        assert int(np.count_nonzero(~sorted_survivors)) >= 30
        assert int(np.count_nonzero(~shuffled_survivors)) == 0
        # Exactness on both layouts: no matching row inside a skipped block.
        for data, survivors in ((sorted_data, sorted_survivors), (shuffled, shuffled_survivors)):
            mask = (data >= lo) & (data <= hi)
            rows = ZoneMap.build(data).candidate_rows(survivors)
            assert mask[np.setdiff1d(np.arange(data.shape[0]), rows)].sum() == 0
            assert mask.sum() == mask[rows].sum()

    @given(
        st.lists(st.integers(min_value=0, max_value=50), min_size=1, max_size=400),
        st.integers(min_value=2, max_value=64),
    )
    @settings(max_examples=50, deadline=None)
    def test_candidate_rows_matches_expanded_mask(self, values, block_rows):
        data = np.asarray(values, dtype=np.int64)
        zm = ZoneMap.build(data, block_rows=block_rows)
        rng = np.random.default_rng(len(values) * block_rows)
        survivors = rng.random(zm.num_blocks) < 0.4
        expected = np.flatnonzero(np.repeat(survivors, zm.block_lengths()))
        np.testing.assert_array_equal(zm.candidate_rows(survivors), expected)

    def test_domain_and_not_value_pruning(self):
        data = np.repeat(np.arange(4, dtype=np.int64), 8)
        zm = ZoneMap.build(data, block_rows=8)  # one block per value
        domain = np.array([False, True, False, False])
        np.testing.assert_array_equal(zm.survivors_domain(domain), [False, True, False, False])
        np.testing.assert_array_equal(zm.survivors_not_value(2), [True, True, False, True])


# ---------------------------------------------------------------------------
# Code-space evaluation vs plain Expression.evaluate
# ---------------------------------------------------------------------------
class TestCodeSpace:
    @pytest.fixture()
    def db(self):
        rng = np.random.default_rng(9)
        n = 3 * DEFAULT_BLOCK_ROWS
        db = Database()
        db.register_dataframe(
            "t",
            {
                "sorted": np.arange(n, dtype=np.int64),
                "rand": rng.integers(0, 40, size=n, dtype=np.int64),
                "name": [f"name_{i % 13:02d}" for i in range(n)],
            },
        )
        yield db
        db.close()

    @pytest.mark.parametrize(
        "expr_maker",
        [
            lambda: between("sorted", 100, 300),
            lambda: lt("sorted", 5),
            lambda: eq("rand", 7),
            lambda: isin("rand", (3, 5, 39)),
            lambda: lt("name", "name_03"),
            lambda: contains("name", "_1"),
            lambda: between("sorted", 10, 40) & eq("rand", 2),
            lambda: between("sorted", -100, -1),  # provably empty
        ],
        ids=["between", "lt", "eq", "in", "str-lt", "like", "conj", "empty"],
    )
    def test_mask_bit_identical(self, db, expr_maker):
        expr = expr_maker()
        table = db.catalog.table("t")
        store = db.catalog.encodings
        result = codespace.evaluate(expr, table, store)
        assert result is not None
        np.testing.assert_array_equal(result.mask, np.asarray(expr.evaluate(table), dtype=bool))
        assert 0 <= result.blocks_skipped <= result.blocks_total
        bound = codespace.rows_upper_bound(expr, table, store)
        if bound is not None:
            assert bound >= int(result.mask.sum())

    def test_impossible_predicate_bounds_to_zero(self, db):
        table = db.catalog.table("t")
        store = db.catalog.encodings
        assert codespace.rows_upper_bound(between("sorted", -100, -1), table, store) == 0

    def test_unsupported_shape_returns_none(self, db):
        table = db.catalog.table("t")
        store = db.catalog.encodings
        expr = lt("sorted", 5) | eq("rand", 1)  # disjunction: unsupported
        assert codespace.evaluate(expr, table, store) is None
        assert codespace.rows_upper_bound(expr, table, store) is None


# ---------------------------------------------------------------------------
# The catalog-owned store
# ---------------------------------------------------------------------------
class TestEncodingStore:
    def test_store_serves_and_invalidates_on_replace(self):
        db = Database()
        try:
            db.register_dataframe("t", {"x": np.repeat(np.arange(4, dtype=np.int64), 1000)})
            store = db.catalog.encodings
            table = db.catalog.table("t")
            first = store.encoded(table, "x")
            assert first is not None and first.encoding == "rle"
            assert store.encoded(table, "x") is first  # cached
            assert store.token(table, "x") == first.token
            assert store.encoded_bytes(table, "x") == first.encoded_bytes

            rng = np.random.default_rng(10)
            db.register_dataframe(
                "t", {"x": rng.integers(0, 200, size=4000, dtype=np.int64)}, replace=True
            )
            # The old table object no longer resolves through the store...
            assert store.encoded(table, "x") is None
            # ...and the new one gets a freshly probed encoding.
            replaced = store.encoded(db.catalog.table("t"), "x")
            assert replaced is not None and replaced.encoding == "pack"
        finally:
            db.close()

    def test_zone_map_available_for_unencoded_integer_columns(self):
        db = Database()
        try:
            rng = np.random.default_rng(11)
            db.register_dataframe(
                "t",
                {
                    "wide": rng.integers(-(2**60), 2**60, size=1000, dtype=np.int64),
                    "f": rng.random(1000),
                },
            )
            store = db.catalog.encodings
            table = db.catalog.table("t")
            assert store.encoded(table, "wide") is None
            assert store.zone_map(table, "wide") is not None  # raw columns still skip
            assert store.zone_map(table, "f") is None  # floats have no physical int64
            assert store.token(table, "wide") == "raw"
        finally:
            db.close()
