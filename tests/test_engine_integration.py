"""Integration tests for the Database façade across all execution modes.

These are the end-to-end correctness tests: for realistic queries over the
fixture databases, every execution mode and every join order must produce
the same aggregate results, and RPT must exhibit the theoretical properties
the paper proves (full reduction, bounded intermediates).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import Database, ExecutionConfig, ExecutionMode, ExecutionOptions
from repro.engine.database import QueryResult
from repro.errors import PlanError
from repro.exec.transfer import TransferOptions
from repro.optimizer import generate_bushy_plans, generate_left_deep_plans
from repro.plan.join_plan import JoinPlan
from repro.query import JoinCondition, QuerySpec, RelationRef


class TestModeAgreement:
    def test_all_modes_same_count(self, imdb_db, star_query, all_modes):
        counts = {mode: imdb_db.execute(star_query, mode=mode).aggregates["count_star"] for mode in all_modes}
        assert len(set(counts.values())) == 1, counts

    def test_all_modes_same_count_chain(self, imdb_db, chain_query, all_modes):
        counts = {mode: imdb_db.execute(chain_query, mode=mode).aggregates["count_star"] for mode in all_modes}
        assert len(set(counts.values())) == 1, counts

    def test_all_modes_same_count_cyclic(self, imdb_db, cyclic_query, all_modes):
        counts = {mode: imdb_db.execute(cyclic_query, mode=mode).aggregates["count_star"] for mode in all_modes}
        assert len(set(counts.values())) == 1, counts

    def test_result_object_contents(self, imdb_db, star_query):
        result = imdb_db.execute(star_query, mode=ExecutionMode.RPT)
        assert isinstance(result, QueryResult)
        assert result.join_tree is not None
        assert result.schedule is not None
        assert result.plan.aliases == frozenset(star_query.aliases)
        assert result.stats.query_name == star_query.name
        assert result.output_rows == result.stats.output_rows
        baseline = imdb_db.execute(star_query, mode=ExecutionMode.BASELINE)
        assert baseline.join_tree is None and baseline.schedule is None


class TestJoinOrderInvariance:
    def test_random_left_deep_orders_agree(self, imdb_db, chain_query):
        graph = imdb_db.join_graph(chain_query)
        plans = generate_left_deep_plans(graph, 12, seed=5)
        counts = set()
        for plan in plans:
            for mode in (ExecutionMode.BASELINE, ExecutionMode.RPT):
                counts.add(imdb_db.execute(chain_query, mode=mode, plan=plan).aggregates["count_star"])
        assert len(counts) == 1

    def test_random_bushy_orders_agree(self, imdb_db, star_query):
        graph = imdb_db.join_graph(star_query)
        plans = generate_bushy_plans(graph, 10, seed=6)
        counts = {
            imdb_db.execute(star_query, mode=ExecutionMode.RPT, plan=plan).aggregates["count_star"]
            for plan in plans
        }
        assert len(counts) == 1


class TestRptGuarantees:
    def test_full_reduction_acyclic(self, imdb_db, star_query):
        """With exact semi-joins (Yannakakis), every surviving tuple joins in the output.

        The Bloom variant may keep extra tuples (false positives) but never fewer.
        """
        exact = imdb_db.execute(star_query, mode=ExecutionMode.YANNAKAKIS)
        bloom = imdb_db.execute(star_query, mode=ExecutionMode.RPT)
        for alias in star_query.aliases:
            assert bloom.stats.reduced_rows[alias] >= exact.stats.reduced_rows[alias]

    def test_intermediates_bounded_by_output(self, imdb_db, star_query, chain_query):
        """Yannakakis bound: every intermediate of the exact-reduced join phase is <= |OUT|."""
        for query in (star_query, chain_query):
            graph = imdb_db.join_graph(query)
            plans = generate_left_deep_plans(graph, 8, seed=1)
            for plan in plans:
                result = imdb_db.execute(query, mode=ExecutionMode.YANNAKAKIS, plan=plan)
                out = result.stats.output_rows
                for step in result.stats.join_steps[:-1]:
                    assert step.output_rows <= max(out, 0) or out == 0 and step.output_rows == 0

    def test_rpt_more_robust_than_baseline(self, imdb_db, chain_query):
        graph = imdb_db.join_graph(chain_query)
        plans = generate_left_deep_plans(graph, 12, seed=3)
        def rf(mode):
            costs = [
                imdb_db.execute(chain_query, mode=mode, plan=p).stats.cost("tuples") for p in plans
            ]
            return max(costs) / min(costs)
        assert rf(ExecutionMode.RPT) <= rf(ExecutionMode.BASELINE) + 1e-9

    def test_transfer_phase_reduces_relations(self, imdb_db, star_query):
        result = imdb_db.execute(star_query, mode=ExecutionMode.RPT)
        assert sum(result.stats.reduced_rows.values()) < sum(result.stats.filtered_rows.values())


class TestExecutionOptions:
    def test_skip_backward_when_aligned(self, imdb_db, star_query):
        result = imdb_db.execute(star_query, mode=ExecutionMode.RPT)
        aligned_plan = JoinPlan.from_left_deep(result.join_tree.aligned_join_order())
        options = ExecutionOptions(skip_backward_if_aligned=True)
        aligned = imdb_db.execute(star_query, mode=ExecutionMode.RPT, plan=aligned_plan, options=options)
        assert all(s.pass_ == "forward" for s in aligned.stats.transfer_steps)
        # Correctness is unaffected.
        assert aligned.aggregates == result.aggregates

    def test_custom_fpr(self, imdb_db, star_query):
        # Exact-bitmap downgrades (the REPRO_ADAPTIVE_TRANSFER CI leg) would
        # replace the Bloom filters whose FPR-driven sizing this test
        # measures, so they are pinned off here.
        no_bitmap = ExecutionConfig(bitmap_downgrade=False)
        tight = ExecutionOptions(transfer=TransferOptions(fpr=0.001), execution=no_bitmap)
        loose = ExecutionOptions(transfer=TransferOptions(fpr=0.2), execution=no_bitmap)
        r_tight = imdb_db.execute(star_query, mode=ExecutionMode.RPT, options=tight)
        r_loose = imdb_db.execute(star_query, mode=ExecutionMode.RPT, options=loose)
        assert r_tight.aggregates == r_loose.aggregates
        assert r_tight.stats.bloom_bytes > r_loose.stats.bloom_bytes

    def test_verify_safe_join_order_flags_unsafe(self):
        from repro.workloads.synthetic import unsafe_subjoin_instance

        instance = unsafe_subjoin_instance(n=50)
        options = ExecutionOptions(verify_safe_join_order=True)
        safe_plan = JoinPlan.from_left_deep(("s", "r", "t"))
        unsafe_plan = JoinPlan.from_left_deep(("s", "t", "r"))
        instance.database.execute(instance.query, mode=ExecutionMode.RPT, plan=safe_plan, options=options)
        with pytest.raises(PlanError):
            instance.database.execute(instance.query, mode=ExecutionMode.RPT, plan=unsafe_plan, options=options)


class TestValidation:
    def test_disconnected_query_rejected(self, imdb_db):
        query = QuerySpec(
            name="disc",
            relations=(RelationRef("a", "keyword"), RelationRef("b", "title")),
            joins=(),
        )
        with pytest.raises(PlanError):
            imdb_db.execute(query, mode=ExecutionMode.BASELINE)

    def test_plan_must_cover_query(self, imdb_db, star_query):
        with pytest.raises(PlanError):
            imdb_db.execute(star_query, plan=JoinPlan.from_left_deep(("mk", "t")))

    def test_single_table_query(self, imdb_db):
        from repro.expr import lt

        query = QuerySpec(
            name="single",
            relations=(RelationRef("t", "title", lt("production_year", 1980)),),
            joins=(),
        )
        result = imdb_db.execute(query, mode=ExecutionMode.BASELINE)
        expected = int(lt("production_year", 1980).evaluate(imdb_db.table("title")).sum())
        assert result.aggregates["count_star"] == expected

    def test_acyclicity_helpers(self, imdb_db, star_query, cyclic_query):
        assert imdb_db.is_acyclic(star_query)
        assert imdb_db.is_gamma_acyclic(star_query)
        assert not imdb_db.is_acyclic(cyclic_query)

    def test_register_table_replace(self):
        db = Database()
        db.register_dataframe("t", {"a": [1]})
        with pytest.raises(Exception):
            db.register_dataframe("t", {"a": [2]})
        db.register_dataframe("t", {"a": [2, 3]}, replace=True)
        assert db.table("t").num_rows == 2
