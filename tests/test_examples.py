"""Smoke test: every script in ``examples/`` runs cleanly against the current API.

The examples are executed as real subprocesses (fresh interpreter, the same
``PYTHONPATH=src`` contract the README documents), so any API drift — a
renamed option, a changed ``QueryResult`` attribute, a moved module — fails
CI instead of silently rotting the documentation.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
EXAMPLES_DIR = REPO_ROOT / "examples"
EXAMPLE_SCRIPTS = sorted(EXAMPLES_DIR.glob("*.py"))

#: Generous per-example ceiling; each example runs in around a second.
EXAMPLE_TIMEOUT_SECONDS = 300


def test_examples_directory_is_populated():
    assert EXAMPLE_SCRIPTS, f"no example scripts found under {EXAMPLES_DIR}"


@pytest.mark.parametrize("script", EXAMPLE_SCRIPTS, ids=lambda p: p.name)
def test_example_runs_cleanly(script: Path):
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else src
    completed = subprocess.run(
        [sys.executable, str(script)],
        cwd=str(REPO_ROOT),
        env=env,
        capture_output=True,
        text=True,
        timeout=EXAMPLE_TIMEOUT_SECONDS,
    )
    assert completed.returncode == 0, (
        f"{script.name} exited with {completed.returncode}\n"
        f"--- stdout ---\n{completed.stdout[-2000:]}\n"
        f"--- stderr ---\n{completed.stderr[-2000:]}"
    )
    assert completed.stdout.strip(), f"{script.name} produced no output"
