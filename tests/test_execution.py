"""Unit tests for bound relations, the transfer executor, and the join-phase executor."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import largest_root, schedule_from_tree, small2large, schedule_from_transfer_graph
from repro.engine.database import Database
from repro.errors import ExecutionError
from repro.exec.join_phase import JoinPhaseExecutor, JoinPhaseOptions
from repro.exec.relation import BoundRelation, IntermediateResult, bind_relations
from repro.exec.statistics import ExecutionStats, merge_reduced_rows
from repro.exec.transfer import TransferExecutor, TransferOptions
from repro.plan.join_plan import JoinNode, JoinPlan, LeafNode
from repro.query import JoinCondition, QuerySpec, RelationRef
from repro.expr import eq, lt
from repro.storage.table import ForeignKey, Table


@pytest.fixture()
def small_db() -> Database:
    db = Database()
    db.register_dataframe(
        "dim",
        {"id": [1, 2, 3, 4, 5], "color": ["red", "blue", "red", "green", "blue"]},
        primary_key=["id"],
    )
    db.register_dataframe(
        "fact",
        {
            "dim_id": [1, 1, 2, 3, 3, 3, 5, 9],
            "other_id": [1, 2, 1, 2, 1, 2, 1, 2],
            "value": [10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 70.0, 80.0],
        },
        foreign_keys=[ForeignKey("dim_id", "dim", "id"), ForeignKey("other_id", "other", "id")],
    )
    db.register_dataframe("other", {"id": [1, 2], "flag": [0, 1]}, primary_key=["id"])
    return db


@pytest.fixture()
def small_query() -> QuerySpec:
    return QuerySpec(
        name="small",
        relations=(
            RelationRef("d", "dim", eq("color", "red")),
            RelationRef("f", "fact"),
            RelationRef("o", "other", eq("flag", 1)),
        ),
        joins=(
            JoinCondition("f", "dim_id", "d", "id"),
            JoinCondition("f", "other_id", "o", "id"),
        ),
    )


class TestBoundRelation:
    def test_bind_applies_base_filters(self, small_db, small_query):
        relations = bind_relations(small_query.relations, small_db.catalog)
        assert relations["d"].num_rows == 2   # red rows
        assert relations["f"].num_rows == 8
        assert relations["o"].num_rows == 1

    def test_key_values_and_keep(self, small_db, small_query):
        relations = bind_relations(small_query.relations, small_db.catalog)
        fact = relations["f"]
        keys = fact.key_values("dim_id")
        assert keys.tolist() == [1, 1, 2, 3, 3, 3, 5, 9]
        fact.keep(keys <= 2)
        assert fact.num_rows == 3

    def test_keep_wrong_length_raises(self, small_db, small_query):
        relations = bind_relations(small_query.relations, small_db.catalog)
        with pytest.raises(ExecutionError):
            relations["f"].keep(np.array([True]))

    def test_float_column_rejected_as_key(self, small_db, small_query):
        relations = bind_relations(small_query.relations, small_db.catalog)
        with pytest.raises(ExecutionError):
            relations["f"].key_values("value")

    def test_snapshot_is_independent(self, small_db, small_query):
        relations = bind_relations(small_query.relations, small_db.catalog)
        snap = relations["f"].snapshot()
        relations["f"].keep(np.zeros(8, dtype=bool))
        assert relations["f"].num_rows == 0
        assert snap.num_rows == 8


class TestTransferExecutor:
    def _run(self, db, query, use_bloom=True, prune=True, schedule_kind="rpt"):
        graph = db.join_graph(query)
        relations = bind_relations(query.relations, db.catalog)
        if schedule_kind == "rpt":
            schedule = schedule_from_tree(largest_root(graph))
        else:
            schedule = schedule_from_transfer_graph(small2large(graph))
        stats = ExecutionStats(query_name=query.name, mode="test")
        for ref in query.relations:
            stats.filtered_rows[ref.alias] = relations[ref.alias].num_rows
        executor = TransferExecutor(
            graph, relations, TransferOptions(use_bloom=use_bloom, prune_trivial_semijoins=prune)
        )
        executor.run(schedule, stats)
        return relations, stats

    def test_exact_semijoin_full_reduction(self, small_db, small_query):
        """After the exact transfer phase every surviving tuple joins in the output."""
        relations, stats = self._run(small_db, small_query, use_bloom=False)
        # dim rows: only red dims referenced by facts whose other_id has flag=1.
        # fact rows must reference a red dim AND other_id = 2.
        fact_rows = {
            (d, o)
            for d, o in zip(relations["f"].key_values("dim_id"), relations["f"].key_values("other_id"))
        }
        assert all(o == 2 for _, o in fact_rows)
        assert all(d in (1, 3) for d, _ in fact_rows)
        assert stats.reduced_rows["f"] == relations["f"].num_rows

    def test_bloom_is_superset_of_exact(self, small_db, small_query):
        exact_relations, _ = self._run(small_db, small_query, use_bloom=False)
        bloom_relations, _ = self._run(small_db, small_query, use_bloom=True)
        for alias in ("d", "f", "o"):
            exact_rows = set(exact_relations[alias].row_indices.tolist())
            bloom_rows = set(bloom_relations[alias].row_indices.tolist())
            assert exact_rows <= bloom_rows

    def test_step_statistics_recorded(self, small_db, small_query):
        _, stats = self._run(small_db, small_query)
        assert stats.transfer_steps
        for step in stats.transfer_steps:
            assert step.rows_after <= step.rows_before
        assert stats.bloom_bytes > 0

    def test_trivial_pk_fk_steps_pruned(self, small_db):
        """With no filter on `dim`, the fact ⋉ dim step is trivial and skipped."""
        query = QuerySpec(
            name="no_filter",
            relations=(RelationRef("d", "dim"), RelationRef("f", "fact")),
            joins=(JoinCondition("f", "dim_id", "d", "id"),),
        )
        _, stats = self._run(small_db, query, prune=True)
        skipped = [s for s in stats.transfer_steps if s.skipped]
        assert any(s.source == "d" and s.target == "f" for s in skipped)
        _, stats_noprune = self._run(small_db, query, prune=False)
        assert not any(s.skipped for s in stats_noprune.transfer_steps)

    def test_small2large_schedule_also_runs(self, small_db, small_query):
        relations, stats = self._run(small_db, small_query, schedule_kind="pt")
        assert stats.transfer_steps
        assert relations["f"].num_rows <= 8


class TestJoinPhaseExecutor:
    def _reduced(self, db, query):
        graph = db.join_graph(query)
        relations = bind_relations(query.relations, db.catalog)
        schedule = schedule_from_tree(largest_root(graph))
        stats = ExecutionStats()
        TransferExecutor(graph, relations, TransferOptions(use_bloom=False)).run(schedule, stats)
        return graph, relations

    def test_all_left_deep_orders_same_output(self, small_db, small_query):
        graph, relations = self._reduced(small_db, small_query)
        outputs = set()
        for order in (("d", "f", "o"), ("f", "d", "o"), ("o", "f", "d")):
            executor = JoinPhaseExecutor(small_query, graph, relations)
            stats = ExecutionStats()
            result = executor.run(JoinPlan.from_left_deep(order), stats)
            outputs.add(result.num_rows)
            assert stats.output_rows == result.num_rows
        assert len(outputs) == 1

    def test_cartesian_product_rejected_by_default(self, small_db, small_query):
        graph, relations = self._reduced(small_db, small_query)
        executor = JoinPhaseExecutor(small_query, graph, relations)
        with pytest.raises(ExecutionError):
            executor.run(JoinPlan.from_left_deep(("d", "o", "f")), ExecutionStats())

    def test_cartesian_product_allowed_when_enabled(self, small_db, small_query):
        graph, relations = self._reduced(small_db, small_query)
        executor = JoinPhaseExecutor(
            small_query, graph, relations, JoinPhaseOptions(allow_cartesian_products=True)
        )
        stats = ExecutionStats()
        result = executor.run(JoinPlan.from_left_deep(("d", "o", "f")), stats)
        reference = JoinPhaseExecutor(small_query, graph, relations).run(
            JoinPlan.from_left_deep(("d", "f", "o")), ExecutionStats()
        )
        assert result.num_rows == reference.num_rows

    def test_bushy_plan_matches_left_deep(self, small_db, small_query):
        graph, relations = self._reduced(small_db, small_query)
        bushy = JoinPlan(root=JoinNode(
            left=JoinNode(left=LeafNode("f"), right=LeafNode("d")),
            right=LeafNode("o"),
        ))
        left_deep = JoinPlan.from_left_deep(("f", "d", "o"))
        a = JoinPhaseExecutor(small_query, graph, relations).run(bushy, ExecutionStats())
        b = JoinPhaseExecutor(small_query, graph, relations).run(left_deep, ExecutionStats())
        assert a.num_rows == b.num_rows

    def test_build_side_flip_preserves_result(self, small_db, small_query):
        graph, relations = self._reduced(small_db, small_query)
        flipped = JoinPlan(root=JoinNode(
            left=JoinNode(left=LeafNode("f"), right=LeafNode("d"), flip_build_side=True),
            right=LeafNode("o"),
        ))
        normal = JoinPlan.from_left_deep(("f", "d", "o"))
        a = JoinPhaseExecutor(small_query, graph, relations).run(flipped, ExecutionStats())
        b = JoinPhaseExecutor(small_query, graph, relations).run(normal, ExecutionStats())
        assert a.num_rows == b.num_rows

    def test_bloom_prefilter_does_not_change_result(self, small_db, small_query):
        graph, relations = self._reduced(small_db, small_query)
        plain = JoinPhaseExecutor(small_query, graph, relations).run(
            JoinPlan.from_left_deep(("f", "d", "o")), ExecutionStats()
        )
        stats = ExecutionStats()
        with_bloom = JoinPhaseExecutor(
            small_query, graph, relations, JoinPhaseOptions(bloom_prefilter=True)
        ).run(JoinPlan.from_left_deep(("f", "d", "o")), stats)
        assert plain.num_rows == with_bloom.num_rows

    def test_aggregates(self, small_db, small_query):
        from repro.query import AggregateSpec

        graph, relations = self._reduced(small_db, small_query)
        query = small_query.with_aggregates(
            [AggregateSpec("count", output_name="n"), AggregateSpec("sum", "f", "value", "total"),
             AggregateSpec("min", "f", "value", "lo"), AggregateSpec("max", "f", "value", "hi"),
             AggregateSpec("avg", "f", "value", "mean")]
        )
        executor = JoinPhaseExecutor(query, graph, relations)
        stats = ExecutionStats()
        result = executor.run(JoinPlan.from_left_deep(("f", "d", "o")), stats)
        aggs = executor.aggregate(result, stats)
        assert aggs["n"] == result.num_rows
        assert aggs["lo"] <= aggs["mean"] <= aggs["hi"]
        assert aggs["total"] == pytest.approx(aggs["mean"] * aggs["n"])

    def test_join_step_stats_recorded(self, small_db, small_query):
        graph, relations = self._reduced(small_db, small_query)
        stats = ExecutionStats()
        JoinPhaseExecutor(small_query, graph, relations).run(
            JoinPlan.from_left_deep(("f", "d", "o")), stats
        )
        assert len(stats.join_steps) == 2
        assert stats.total_intermediate_rows == stats.join_steps[0].output_rows
        assert stats.total_tuples_processed > 0
        assert merge_reduced_rows(stats) is not None


class TestIntermediateResult:
    def test_merge_rejects_overlap(self):
        a = IntermediateResult(positions={"x": np.array([0, 1])})
        b = IntermediateResult(positions={"x": np.array([0])})
        with pytest.raises(ExecutionError):
            a.merge(b, np.array([0]), np.array([0]))

    def test_from_relation_and_take(self):
        table = Table.from_dict("t", {"a": [10, 20, 30]})
        relation = BoundRelation.from_table("r", table)
        result = IntermediateResult.from_relation(relation)
        assert result.num_rows == 3
        taken = result.take(np.array([2, 0]))
        assert taken.column_values({"r": relation}, "r", "a").tolist() == [30, 10]
