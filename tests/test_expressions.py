"""Unit tests for the expression language and selectivity estimation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ExecutionError
from repro.expr import (
    and_,
    between,
    col,
    contains,
    ends_with,
    eq,
    estimate_selectivity,
    ge,
    gt,
    isin,
    le,
    lit,
    lt,
    ne,
    not_,
    or_,
    starts_with,
)
from repro.expr.expressions import Comparison
from repro.storage import Table
from repro.storage.catalog import TableStatistics


@pytest.fixture()
def table() -> Table:
    return Table.from_dict(
        "t",
        {
            "x": [1, 5, 10, 15, 20],
            "y": [2.0, 4.0, 6.0, 8.0, 10.0],
            "s": ["apple", "banana", "apricot", "cherry", "blueberry"],
        },
    )


class TestComparisons:
    def test_eq_int(self, table):
        assert eq("x", 10).evaluate(table).tolist() == [False, False, True, False, False]

    def test_ne(self, table):
        assert ne("x", 10).evaluate(table).sum() == 4

    def test_lt_le_gt_ge(self, table):
        assert lt("x", 10).evaluate(table).sum() == 2
        assert le("x", 10).evaluate(table).sum() == 3
        assert gt("x", 10).evaluate(table).sum() == 2
        assert ge("x", 10).evaluate(table).sum() == 3

    def test_eq_string_uses_dictionary(self, table):
        assert eq("s", "cherry").evaluate(table).tolist() == [False, False, False, True, False]

    def test_eq_missing_string_matches_nothing(self, table):
        assert eq("s", "zucchini").evaluate(table).sum() == 0

    def test_ordered_string_comparison_decodes(self, table):
        # Lexicographic: strings < "b" are only "apple" and "apricot".
        assert lt("s", "b").evaluate(table).sum() == 2

    def test_invalid_operator_raises(self):
        with pytest.raises(ExecutionError):
            Comparison("x", "<>", 1)

    def test_referenced_columns(self):
        assert eq("x", 1).referenced_columns() == frozenset({"x"})


class TestCompoundPredicates:
    def test_between(self, table):
        assert between("x", 5, 15).evaluate(table).sum() == 3

    def test_isin(self, table):
        assert isin("x", [1, 20, 99]).evaluate(table).sum() == 2

    def test_isin_strings(self, table):
        assert isin("s", ["apple", "cherry"]).evaluate(table).sum() == 2

    def test_string_predicates(self, table):
        assert starts_with("s", "ap").evaluate(table).sum() == 2
        assert ends_with("s", "berry").evaluate(table).sum() == 1
        assert contains("s", "an").evaluate(table).sum() == 1

    def test_string_predicate_on_numeric_raises(self, table):
        with pytest.raises(ExecutionError):
            starts_with("x", "a").evaluate(table)

    def test_and_or_not(self, table):
        expr = and_(gt("x", 1), lt("x", 20))
        assert expr.evaluate(table).sum() == 3
        expr = or_(eq("x", 1), eq("x", 20))
        assert expr.evaluate(table).sum() == 2
        assert not_(eq("x", 1)).evaluate(table).sum() == 4

    def test_operator_overloads(self, table):
        expr = (gt("x", 1) & lt("x", 20)) | eq("x", 1)
        assert expr.evaluate(table).sum() == 4
        assert (~eq("x", 1)).evaluate(table).sum() == 4

    def test_column_ref_and_literal(self, table):
        assert col("x").evaluate(table).tolist() == [1, 5, 10, 15, 20]
        assert lit(7).evaluate(table).tolist() == [7] * 5

    def test_referenced_columns_compound(self, table):
        expr = and_(eq("x", 1), or_(lt("y", 3.0), eq("s", "apple")))
        assert expr.referenced_columns() == frozenset({"x", "y", "s"})


class TestSelectivity:
    def test_none_is_one(self):
        assert estimate_selectivity(None) == 1.0

    def test_equality_uses_distinct_counts(self):
        stats = TableStatistics(num_rows=1000, distinct_counts={"x": 50})
        assert estimate_selectivity(eq("x", 1), stats) == pytest.approx(1 / 50)

    def test_equality_default(self):
        assert estimate_selectivity(eq("x", 1)) == pytest.approx(0.1)

    def test_conjunction_multiplies(self):
        stats = TableStatistics(num_rows=1000, distinct_counts={"x": 10, "y": 10})
        sel = estimate_selectivity(and_(eq("x", 1), eq("y", 2)), stats)
        assert sel == pytest.approx(0.01)

    def test_disjunction_inclusion_exclusion(self):
        stats = TableStatistics(num_rows=100, distinct_counts={"x": 2})
        sel = estimate_selectivity(or_(eq("x", 1), eq("x", 2)), stats)
        assert sel == pytest.approx(0.75)

    def test_not_complements(self):
        stats = TableStatistics(num_rows=100, distinct_counts={"x": 4})
        assert estimate_selectivity(not_(eq("x", 1)), stats) == pytest.approx(0.75)

    def test_in_list_scales_with_values(self):
        stats = TableStatistics(num_rows=100, distinct_counts={"x": 10})
        assert estimate_selectivity(isin("x", [1, 2, 3]), stats) == pytest.approx(0.3)

    def test_clamped_to_unit_interval(self):
        stats = TableStatistics(num_rows=10, distinct_counts={"x": 1})
        assert 0.0 <= estimate_selectivity(isin("x", list(range(100))), stats) <= 1.0

    def test_range_default(self):
        assert estimate_selectivity(lt("x", 5)) == pytest.approx(1 / 3)
        assert estimate_selectivity(between("x", 1, 2)) == pytest.approx(0.25)
