"""Fault injection, deadlines/cancellation, crash recovery, degradation ladder.

Every test here follows the same acceptance contract: under any injected
fault, a query either completes **bit-identical** to a fault-free serial
execution or raises a typed :class:`~repro.errors.ReproError` subclass —
and either way leaves no shared-memory segment and no outstanding memory
governor reservation behind.
"""

from __future__ import annotations

import gc

import numpy as np
import pytest

from repro import Database, ExecutionMode
from repro.engine.database import ExecutionOptions
from repro.engine.modes import ExecutionConfig
from repro.errors import (
    FaultInjected,
    MemoryExhausted,
    QueryCancelled,
    QueryTimeout,
    ReproError,
)
from repro.exec import faults
from repro.exec.faults import CancelToken, FaultInjector, FaultPlan
from repro.storage import buffer, shm


@pytest.fixture(autouse=True)
def _clean_faults():
    """Every test starts and ends without an active fault plan."""
    faults.clear()
    yield
    faults.clear()
    # Session fixtures legitimately keep arena-published base columns live;
    # anything else is a leak.
    shm.assert_no_transient_leaks()
    gc.collect()
    buffer.assert_no_outstanding_reservations()


def _options(**execution) -> ExecutionOptions:
    return ExecutionOptions(execution=ExecutionConfig(**execution))


def _assert_identical(result, baseline):
    assert result.aggregates == baseline.aggregates
    assert result.output_rows == baseline.output_rows


# ---------------------------------------------------------------------------
# The plan / injector primitives
# ---------------------------------------------------------------------------
class TestFaultPlan:
    def test_spec_round_trips(self):
        plan = FaultPlan(seed=1234, rate=0.05, sites=("process.task", "shm.attach"), latency=0.25)
        assert FaultPlan.parse(plan.spec()) == plan

    def test_parse_defaults_and_whitespace(self):
        plan = FaultPlan.parse(" seed:7 , rate:0.5 ")
        assert plan == FaultPlan(seed=7, rate=0.5)
        assert FaultPlan.parse("") == FaultPlan()

    def test_parse_rejects_unknown_site(self):
        with pytest.raises(FaultInjected, match="unknown fault site"):
            FaultPlan.parse("seed:1,rate:0.5,sites:no.such.site")

    def test_parse_rejects_bad_rate(self):
        with pytest.raises(FaultInjected, match="rate must be in"):
            FaultPlan.parse("seed:1,rate:1.5")

    def test_parse_rejects_malformed_entry(self):
        with pytest.raises(FaultInjected, match="malformed"):
            FaultPlan.parse("seed:1,bogus")

    def test_injector_is_deterministic_per_seed(self):
        plan = FaultPlan(seed=99, rate=0.3)
        first = [FaultInjector(plan=plan).should_fire("spill.write") for _ in range(1)]
        runs = []
        for _ in range(3):
            injector = FaultInjector(plan=plan)
            runs.append([injector.should_fire("spill.write") for _ in range(200)])
        assert runs[0] == runs[1] == runs[2]
        assert any(runs[0]) and not all(runs[0])
        # A different seed produces a different firing sequence.
        other = FaultInjector(plan=FaultPlan(seed=100, rate=0.3))
        assert [other.should_fire("spill.write") for _ in range(200)] != runs[0]
        assert first[0] == runs[0][0]

    def test_sites_restrict_firing(self):
        injector = FaultInjector(plan=FaultPlan(seed=1, rate=1.0, sites=("spill.write",)))
        assert injector.should_fire("spill.write")
        assert not injector.should_fire("shm.attach")

    def test_configure_and_clear(self):
        assert faults.configure("seed:5,rate:1.0,sites:spill.write") is not None
        assert faults.should_fire("spill.write")
        faults.clear()
        assert not faults.should_fire("spill.write")


class TestCancelToken:
    def test_manual_cancel(self):
        token = CancelToken()
        token.check()  # no deadline, not cancelled: fine
        token.cancel()
        with pytest.raises(QueryCancelled):
            token.check()

    def test_deadline(self):
        token = CancelToken(timeout_seconds=0.0)
        assert token.expired()
        assert token.remaining() == 0.0
        with pytest.raises(QueryTimeout):
            token.check()

    def test_no_deadline_never_expires(self):
        token = CancelToken()
        assert not token.expired()
        assert token.remaining() is None


# ---------------------------------------------------------------------------
# Worker-crash recovery (the process backend), across all five modes
# ---------------------------------------------------------------------------
class TestCrashRecovery:
    def test_worker_crash_mid_query_all_modes(self, tpch_db, all_modes):
        """Every worker task dies; the query still completes bit-identically.

        ``rate:1.0`` on ``process.task`` kills each worker at its first
        morsel, every retry round too — so the bounded-retry ladder runs to
        its end and the remaining morsels execute inline in the parent.
        """
        from repro.workloads import tpch

        query = tpch.query(5)
        for mode in all_modes:
            baseline = tpch_db.execute(query, mode=mode, options=_options(backend="serial"))
            crashed = tpch_db.execute(
                query,
                mode=mode,
                options=_options(
                    backend="process",
                    num_workers=2,
                    chunk_size=512,
                    max_task_retries=1,
                    faults="seed:3,rate:1.0,sites:process.task",
                ),
            )
            _assert_identical(crashed, baseline)
            assert crashed.stats.worker_crashes > 0
            assert crashed.stats.inline_fallback_morsels > 0
            assert any(
                rung.startswith("process:inline-fallback")
                for rung in crashed.stats.degradations
            )
            assert any(op.degraded for op in crashed.stats.op_stats)
            assert "[degraded" in crashed.stats.op_trace()

    def test_intermittent_crashes_recover_bit_identically(self, tpch_db):
        """A sub-1.0 crash rate exercises the respawn-and-retry path."""
        from repro.workloads import tpch

        query = tpch.query(3)
        baseline = tpch_db.execute(query, options=_options(backend="serial"))
        crashed = tpch_db.execute(
            query,
            options=_options(
                backend="process",
                num_workers=2,
                chunk_size=512,
                faults="seed:11,rate:0.2,sites:process.task",
            ),
        )
        _assert_identical(crashed, baseline)

    def test_worker_shm_attach_fault_recovers(self, tpch_db):
        """Worker-side attach failures are transient: retried, then inline."""
        from repro.workloads import tpch

        query = tpch.query(3)
        baseline = tpch_db.execute(query, options=_options(backend="serial"))
        faulted = tpch_db.execute(
            query,
            options=_options(
                backend="process",
                num_workers=2,
                chunk_size=512,
                max_task_retries=1,
                faults="seed:2,rate:1.0,sites:shm.attach",
            ),
        )
        _assert_identical(faulted, baseline)

    def test_shm_share_fault_falls_back_to_eager_probe(self, tpch_db):
        """Publishing probe inputs fails; probes run eagerly, bit-identically."""
        from repro.workloads import tpch

        query = tpch.query(3)
        baseline = tpch_db.execute(query, options=_options(backend="serial"))
        faulted = tpch_db.execute(
            query,
            options=_options(
                backend="process",
                num_workers=2,
                chunk_size=512,
                faults="seed:4,rate:1.0,sites:shm.share",
            ),
        )
        _assert_identical(faulted, baseline)


# ---------------------------------------------------------------------------
# Deadlines and cancellation
# ---------------------------------------------------------------------------
class TestDeadlines:
    @pytest.mark.parametrize("backend", ["serial", "chunked", "parallel", "process"])
    def test_timeout_during_transfer(self, tpch_db, backend):
        """Injected op latency blows a tiny deadline; the typed error carries
        the partial stats, and nothing leaks."""
        from repro.workloads import tpch

        query = tpch.query(5)
        with pytest.raises(QueryTimeout) as excinfo:
            tpch_db.execute(
                query,
                mode=ExecutionMode.RPT,
                options=_options(
                    backend=backend,
                    timeout_seconds=0.02,
                    faults="seed:1,rate:1.0,sites:op.latency,latency:0.05",
                ),
            )
        stats = excinfo.value.stats
        assert stats is not None
        assert stats.query_name == query.name

    def test_manual_cancellation(self, tpch_db):
        from repro.workloads import tpch

        token = CancelToken()
        token.cancel()
        with pytest.raises(QueryCancelled) as excinfo:
            tpch_db.execute(
                tpch.query(3),
                options=ExecutionOptions(
                    execution=ExecutionConfig(backend="serial"), cancel=token
                ),
            )
        assert excinfo.value.stats is not None

    def test_serial_kernel_chunking_is_bit_identical(self, tpch_db):
        """Cancellation chunking inside serial kernels must not change results."""
        from repro.workloads import tpch

        query = tpch.query(5)
        baseline = tpch_db.execute(query, options=_options(backend="serial"))
        with_token = tpch_db.execute(
            query, options=_options(backend="serial", timeout_seconds=600.0)
        )
        _assert_identical(with_token, baseline)

    def test_generous_deadline_completes(self, tpch_db):
        from repro.workloads import tpch

        result = tpch_db.execute(
            tpch.query(3), options=_options(backend="process", timeout_seconds=600.0)
        )
        assert result.aggregates


# ---------------------------------------------------------------------------
# The graceful-degradation ladder
# ---------------------------------------------------------------------------
class TestDegradationLadder:
    def test_process_pool_unavailable_degrades_to_parallel(self, tpch_db):
        from repro.workloads import tpch

        query = tpch.query(3)
        baseline = tpch_db.execute(query, options=_options(backend="serial"))
        degraded = tpch_db.execute(
            query,
            options=_options(
                backend="process", faults="seed:1,rate:1.0,sites:process.pool"
            ),
        )
        _assert_identical(degraded, baseline)
        assert "backend:process->parallel" in degraded.stats.degradations

    def test_ladder_reaches_serial(self, tpch_db):
        from repro.workloads import tpch

        query = tpch.query(3)
        baseline = tpch_db.execute(query, options=_options(backend="serial"))
        degraded = tpch_db.execute(
            query,
            options=_options(
                backend="process",
                faults="seed:1,rate:1.0,sites:process.pool|parallel.pool",
            ),
        )
        _assert_identical(degraded, baseline)
        assert degraded.stats.degradations[:2] == [
            "backend:process->parallel",
            "backend:parallel->serial",
        ]
        assert "degraded:" in degraded.stats.degradation_summary()

    def test_decode_fault_degrades_to_raw_filters(self, tpch_db):
        """An injected encoded-read failure downgrades that alias to the raw
        filter path — same mask, degradation recorded."""
        from repro.workloads import tpch

        query = tpch.query(3)
        baseline = tpch_db.execute(query, options=_options(backend="serial"))
        degraded = tpch_db.execute(
            query,
            options=_options(
                backend="serial",
                encodings=True,
                fuse_filters=False,
                faults="seed:1,rate:1.0,sites:column.decode",
            ),
        )
        _assert_identical(degraded, baseline)
        assert any(
            rung.startswith("column.decode:") and rung.endswith("->raw")
            for rung in degraded.stats.degradations
        )

    def test_governor_spill_retry_rung(self, tpch_db):
        """An injected allocation failure spills evictables and retries."""
        from repro.workloads import tpch

        query = tpch.query(3)
        baseline = tpch_db.execute(query, options=_options(backend="serial"))
        degraded = tpch_db.execute(
            query,
            options=_options(
                backend="serial",
                memory_budget_bytes=1 << 30,
                faults="seed:1,rate:1.0,sites:alloc.reserve",
            ),
        )
        _assert_identical(degraded, baseline)
        assert "governor:spill-retry" in degraded.stats.degradations
        assert "[degraded governor:spill-retry]" in degraded.stats.op_trace()


# ---------------------------------------------------------------------------
# Storage-layer faults: spill I/O, transient unlink, leak invariants
# ---------------------------------------------------------------------------
class TestStorageFaults:
    def test_spill_write_failure_is_tolerated(self):
        """A failing spill restores the victim and counts the failure."""
        from repro.exec.spill import SpillManager

        faults.configure("seed:1,rate:1.0,sites:spill.write")
        governor = buffer.MemoryGovernor(1 << 20, spill_handler=SpillManager())
        governor.reserve("victim", 1000, evictable=True, inject=False)
        assert governor.spill_evictables() == 0
        assert governor.spill_failures > 0
        governor.release_all()

    def test_spill_read_failure_raises_typed_error(self):
        from repro.exec.spill import SpillManager

        spill = SpillManager()
        spill.spill("res", 512)
        faults.configure("seed:1,rate:1.0,sites:spill.read")
        with pytest.raises(ReproError):
            spill.reload("res", 512)

    def test_unlink_fault_is_transient_and_never_leaks(self):
        before = shm.live_segment_count()
        faults.configure("seed:1,rate:1.0,sites:shm.unlink")
        segment, _ = shm.share_array(np.arange(128, dtype=np.int64))
        shm.unlink_segment(segment)
        assert shm.live_segment_count() == before

    def test_alloc_fault_raises_memory_exhausted_without_spill_handler(self):
        faults.configure("seed:1,rate:1.0,sites:alloc.reserve")
        governor = buffer.MemoryGovernor(1 << 20)
        with pytest.raises(MemoryExhausted):
            governor.reserve("r", 64)
        assert governor.outstanding == 0


# ---------------------------------------------------------------------------
# Database lifecycle
# ---------------------------------------------------------------------------
class TestDatabaseClose:
    def test_close_is_idempotent_and_execute_raises(self):
        from repro.workloads import tpch

        db = Database()
        tpch.load(db, scale=0.01, seed=1)
        query = tpch.query(3)
        db.execute(query, options=_options(backend="serial"))
        db.close()
        db.close()  # idempotent
        assert db.closed
        with pytest.raises(ReproError, match="closed"):
            db.execute(query)
        with pytest.raises(ReproError, match="closed"):
            db.sql("SELECT COUNT(*) FROM lineitem")

    def test_close_unlinks_arena_segments(self):
        from repro.workloads import tpch

        db = Database()
        tpch.load(db, scale=0.01, seed=1)
        before = shm.live_segment_count()
        db.execute(
            tpch.query(3), options=_options(backend="process", chunk_size=512, num_workers=2)
        )
        db.close()
        assert shm.live_segment_count() == before

    def test_close_drains_in_flight_queries(self):
        """``close()`` waits for running queries instead of unlinking under them."""
        import threading

        from repro.workloads import tpch

        db = Database()
        tpch.load(db, scale=0.02, seed=1)
        query = tpch.query(3)
        baseline = db.execute(query, options=_options(backend="serial"))

        results, errors = [], []

        def client():
            try:
                results.append(db.execute(query, options=_options(backend="serial")))
            except ReproError as exc:  # admission refused post-close is also legal
                errors.append(exc)

        threads = [threading.Thread(target=client) for _ in range(4)]
        for t in threads:
            t.start()
        db.close()  # must drain, not race, the in-flight executions
        for t in threads:
            t.join()
        assert db.closed and db.active_queries == 0
        # Whatever was admitted before close finished bit-identical.
        for result in results:
            _assert_identical(result, baseline)
        for exc in errors:
            assert "closed" in str(exc)

    def test_concurrent_close_is_safe(self):
        """Many threads calling close() concurrently: one unlink, no errors."""
        import threading

        from repro.workloads import tpch

        db = Database()
        tpch.load(db, scale=0.01, seed=1)
        db.execute(tpch.query(3), options=_options(backend="serial"))
        failures = []

        def closer():
            try:
                db.close()
            except Exception as exc:  # noqa: BLE001 - any error is a failure here
                failures.append(exc)

        threads = [threading.Thread(target=closer) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not failures
        assert db.closed
        with pytest.raises(ReproError, match="closed"):
            db.execute(tpch.query(3))


# ---------------------------------------------------------------------------
# The sweep harness (subset; CI runs the full 56-file sweep)
# ---------------------------------------------------------------------------
class TestFaultSweep:
    @pytest.mark.parametrize("backend", ["serial", "process"])
    def test_synthetic_sweep_under_5pct_faults(self, backend):
        from repro.workloads import sqlfiles

        records = sqlfiles.run_fault_sweep(
            "seed:1234,rate:0.05",
            backend=backend,
            stems=[s for s in sqlfiles.available() if s.startswith("synthetic_")],
        )
        assert len(records) == 3
        for record in records:
            assert record["outcome"] == "completed" or record["outcome"].endswith("Error") or record["outcome"] in (
                "QueryTimeout",
                "QueryCancelled",
                "FaultInjected",
                "MemoryExhausted",
                "BackendUnavailable",
            )
