"""Fused filter kernels: conjunction compilation, bit-identity, stats.

The contract under test: :func:`repro.expr.fuse_conjunction` compiles a
conjunctive filter tree into one kernel whose mask is bit-identical to
evaluating the original :class:`~repro.expr.And` (later conjuncts run only
on rows surviving the earlier ones, which is pure savings for elementwise
predicates), and the engine's ``fuse_filters`` knob routes base-table
filters through it without changing any query answer.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import Database, ExecutionMode, ExecutionOptions
from repro.engine.modes import ExecutionConfig
from repro.expr import (
    and_,
    between,
    contains,
    eq,
    fuse_conjunction,
    ge,
    gt,
    is_not_null,
    is_null,
    isin,
    le,
    lt,
    ne,
    not_,
    or_,
    starts_with,
)
from repro.storage.table import Table


@pytest.fixture(scope="module")
def table() -> Table:
    rng = np.random.default_rng(41)
    n = 5_000
    return Table.from_dict(
        "t",
        {
            "a": rng.integers(0, 100, size=n, dtype=np.int64),
            "b": rng.integers(-50, 50, size=n, dtype=np.int64),
            "s": rng.choice(["alpha", "beta", "gamma", "alphabet", "delta"], size=n),
        },
    )


# ---------------------------------------------------------------------------
# What fuses and what does not
# ---------------------------------------------------------------------------
class TestCompilation:
    def test_non_conjunction_does_not_fuse(self):
        assert fuse_conjunction(lt("a", 10)) is None
        assert fuse_conjunction(or_(lt("a", 10), gt("a", 90))) is None
        assert fuse_conjunction(None) is None

    def test_unsupported_leaf_blocks_fusion(self):
        assert fuse_conjunction(and_(lt("a", 10), not_(eq("a", 3)))) is None
        assert fuse_conjunction(and_(lt("a", 10), or_(eq("b", 1), eq("b", 2)))) is None

    def test_conjunction_of_supported_leaves_fuses(self):
        kernel = fuse_conjunction(and_(lt("a", 50), ge("b", 0)))
        assert kernel is not None
        assert kernel.num_conjuncts == 2

    def test_nested_conjunctions_flatten(self):
        kernel = fuse_conjunction(and_(and_(lt("a", 50), ge("b", 0)), ne("a", 7)))
        assert kernel is not None
        assert kernel.num_conjuncts == 3


# ---------------------------------------------------------------------------
# Bit-identity against unfused evaluation
# ---------------------------------------------------------------------------
class TestBitIdentity:
    @pytest.mark.parametrize(
        "expr",
        [
            and_(lt("a", 50), ge("b", 0)),
            and_(eq("a", 3), ne("b", 0)),
            and_(between("a", 10, 60), le("b", 25)),
            and_(isin("a", [1, 2, 3, 50, 99]), gt("b", -10)),
            and_(starts_with("s", "alpha"), lt("a", 80)),
            and_(contains("s", "et"), between("b", -20, 20)),
            and_(is_not_null("a"), lt("a", 30), gt("b", -30)),
            and_(is_null("a"), lt("b", 0)),
            and_(isin("a", []), ge("b", 0)),  # empty IN-list: all-false first conjunct
            and_(eq("s", "beta"), lt("a", 90)),  # ordered compare on a string column
        ],
        ids=lambda e: type(e.operands[0]).__name__ + "+" + type(e.operands[1]).__name__,
    )
    def test_fused_mask_matches_unfused(self, table, expr):
        kernel = fuse_conjunction(expr)
        assert kernel is not None
        mask, short_circuited = kernel.evaluate(table)
        np.testing.assert_array_equal(mask, expr.evaluate(table))
        assert short_circuited >= 0

    def test_short_circuit_counter_is_exact(self, table):
        first = lt("a", 50)
        kernel = fuse_conjunction(and_(first, ge("b", 0), ne("a", 7)))
        mask, short_circuited = kernel.evaluate(table)
        survivors_first = int(first.evaluate(table).sum())
        n = table.num_rows
        # Conjunct 2 skips rows conjunct 1 killed; conjunct 3 skips rows
        # either predecessor killed.
        after_two = int((first.evaluate(table) & ge("b", 0).evaluate(table)).sum())
        expected = (n - survivors_first) + (n - after_two)
        assert short_circuited == expected
        assert mask.sum() <= survivors_first


# ---------------------------------------------------------------------------
# Engine integration: the fuse_filters knob
# ---------------------------------------------------------------------------
def _filtered_db():
    rng = np.random.default_rng(43)
    db = Database()
    dim_rows, fact_rows = 2_000, 6_000
    db.register_dataframe(
        "dim",
        {
            "id": np.arange(dim_rows, dtype=np.int64),
            "x": rng.integers(0, 100, size=dim_rows, dtype=np.int64),
            "y": rng.integers(0, 100, size=dim_rows, dtype=np.int64),
        },
        primary_key=["id"],
    )
    db.register_dataframe(
        "fact",
        {
            "v": np.arange(fact_rows, dtype=np.int64),
            "d_id": rng.integers(0, dim_rows, size=fact_rows, dtype=np.int64),
        },
    )
    from repro.query import JoinCondition, QuerySpec, RelationRef

    query = QuerySpec(
        name="fusion_star",
        relations=(
            RelationRef("f", "fact"),
            RelationRef("d", "dim", and_(lt("x", 60), ge("y", 20))),
        ),
        joins=(JoinCondition("f", "d_id", "d", "id"),),
    )
    return db, query


class TestEngineIntegration:
    def test_fused_run_identical_with_stats(self):
        db, query = _filtered_db()
        plan = db.optimizer_plan(query)

        def run(fuse: bool):
            return db.execute(
                query,
                mode=ExecutionMode.RPT,
                plan=plan,
                options=ExecutionOptions(
                    execution=ExecutionConfig(backend="serial", fuse_filters=fuse)
                ),
            )

        plain = run(False)
        fused = run(True)
        assert fused.aggregates == plain.aggregates
        assert fused.output_rows == plain.output_rows
        assert plain.stats.fused_exprs == 0
        assert fused.stats.fused_exprs == 1
        assert fused.stats.fused_rows_short_circuited > 0
        assert "[fused" in fused.stats.op_trace()
        assert "fused 1 filter(s)" in fused.stats.execution_summary()

    def test_all_modes_identical_with_fusion(self, all_modes):
        db, query = _filtered_db()
        plan = db.optimizer_plan(query)
        for mode in all_modes:
            plain = db.execute(query, mode=mode, plan=plan)
            fused = db.execute(
                query,
                mode=mode,
                plan=plan,
                options=ExecutionOptions(
                    execution=ExecutionConfig(fuse_filters=True)
                ),
            )
            assert fused.aggregates == plain.aggregates, mode
            assert fused.output_rows == plain.output_rows, mode

    def test_env_flag_enables_fusion(self, monkeypatch):
        monkeypatch.setenv("REPRO_FUSE_FILTERS", "1")
        assert ExecutionConfig().resolved().fuse_filters is True
        monkeypatch.setenv("REPRO_FUSE_FILTERS", "0")
        assert ExecutionConfig().resolved().fuse_filters is False
        monkeypatch.delenv("REPRO_FUSE_FILTERS")
        assert ExecutionConfig().resolved().fuse_filters is False
