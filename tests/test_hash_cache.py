"""Tests for the hash-once execution layer.

Covers the query-lifetime :class:`~repro.exec.hashcache.HashCache`, the
precomputed-hash kernel APIs (Bloom insert/probe, radix partitioning,
``HashIndex`` with a precomputed order), the cross-query
:class:`~repro.storage.artifacts.ArtifactCache` (including table-change and
filter-change invalidation), bit-identity of every caching configuration
against the uncached path across all five modes / five workloads / three
backends, thread-safety of the Bloom filter statistics under concurrent
probes, and the cache observability counters.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro import (
    Database,
    ExecutionConfig,
    ExecutionMode,
    ExecutionOptions,
    JoinCondition,
    QuerySpec,
    RelationRef,
)
from repro.bloom.bloom_filter import BloomFilter, hash_keys, key_patterns
from repro.errors import CatalogError
from repro.exec.hashcache import HashCache
from repro.exec.kernels import (
    HashIndex,
    PartitionedHashIndex,
    radix_hash,
    radix_partition,
    radix_partition_ids,
)
from repro.expr import eq, lt
from repro.storage.artifacts import ArtifactCache, ArtifactKey, mask_fingerprint
from repro.workloads import dsb, job, synthetic, tpcds, tpch


def _config(hash_cache: bool, selection_vectors: bool, artifact_cache: bool) -> ExecutionOptions:
    # Adaptive transfer is pinned off: under the REPRO_ADAPTIVE_TRANSFER CI
    # leg, skipped passes and exact-bitmap downgrades would remove the very
    # Bloom hashing work whose caching this module tests (adaptive on/off
    # identity has its own matrix in tests/test_adaptive.py).
    return ExecutionOptions(
        execution=ExecutionConfig(
            hash_cache=hash_cache,
            selection_vectors=selection_vectors,
            artifact_cache=artifact_cache,
            adaptive_transfer=False,
        )
    )


UNCACHED = _config(False, False, False)
#: Every caching configuration that must stay bit-identical to UNCACHED.
CACHED_CONFIGS = {
    "hash_only": _config(True, False, False),
    "selvec_only": _config(False, True, False),
    "hash+selvec": _config(True, True, False),
    "all_on": _config(True, True, True),
}


def _signature(result):
    return (
        tuple(sorted(result.aggregates.items())),
        result.output_rows,
        tuple(sorted(result.stats.reduced_rows.items())),
    )


# ---------------------------------------------------------------------------
# HashCache unit behavior
# ---------------------------------------------------------------------------
class TestHashCache:
    def _table(self):
        from repro.storage.table import Table

        return Table.from_dict(
            "t", {"id": np.arange(100, dtype=np.int64), "other": np.arange(100) * 3}
        )

    def test_bloom_pass_matches_direct_hashing(self):
        table = self._table()
        cache = HashCache()
        hashes, patterns = cache.bloom_pass(table, "id")
        expected = hash_keys(table.column("id").data)
        np.testing.assert_array_equal(hashes, expected)
        np.testing.assert_array_equal(patterns, key_patterns(expected))

    def test_hit_and_miss_counters(self):
        table = self._table()
        cache = HashCache()
        assert cache.misses == 0 and cache.hits == 0
        cache.bloom_pass(table, "id")
        assert (cache.hits, cache.misses) == (0, 1)
        cache.bloom_pass(table, "id")
        assert (cache.hits, cache.misses) == (1, 1)
        cache.bloom_pass(table, "other")
        assert (cache.hits, cache.misses) == (1, 2)

    def test_selection_pass_is_keyed_by_row_index_identity(self):
        table = self._table()
        cache = HashCache()
        selection = np.array([1, 5, 9], dtype=np.int64)
        keys = table.column("id").data[selection]
        hashes = hash_keys(keys)
        cache.store_selection_pass(table, "id", selection, (hashes, key_patterns(hashes)))
        hit = cache.selection_pass(table, "id", selection)
        assert hit is not None
        np.testing.assert_array_equal(hit[0], hashes)
        # A different (even equal-valued) row-index array is a different state.
        assert cache.selection_pass(table, "id", selection.copy()) is None

    def test_size_accounting(self):
        table = self._table()
        cache = HashCache()
        assert cache.nbytes == 0 and len(cache) == 0
        cache.bloom_pass(table, "id")
        assert cache.nbytes > 0 and len(cache) == 1

    def test_selection_passes_bounded_per_column(self):
        table = self._table()
        cache = HashCache()
        selections = [np.array([i], dtype=np.int64) for i in range(5)]
        for selection in selections:
            keys = table.column("id").data[selection]
            hashes = hash_keys(keys)
            cache.store_selection_pass(table, "id", selection, (hashes, key_patterns(hashes)))
        assert len(cache) == HashCache.SELECTION_PASSES_PER_COLUMN
        # Only the most recent states are retained.
        assert cache.selection_pass(table, "id", selections[-1]) is not None
        assert cache.selection_pass(table, "id", selections[0]) is None

    def test_rejects_non_integer_columns(self):
        from repro.errors import ExecutionError
        from repro.storage.table import Table

        table = Table.from_dict("t", {"x": np.array([1.5, 2.5])})
        with pytest.raises(ExecutionError):
            HashCache().bloom_pass(table, "x")

    def test_selection_cache_does_not_pin_superseded_selections(self):
        """Superseded ``row_indices`` arrays must be collectable.

        The old ``id()``-keyed cache held strong references to every stored
        selection array (the only way to keep raw ids from aliasing), which
        both pinned dead arrays in memory and was the precondition for the
        id-reuse hazard this regression guards.
        """
        import gc
        import weakref

        table = self._table()
        cache = HashCache()
        selection = np.array([1, 5, 9], dtype=np.int64)
        watcher = weakref.ref(selection)
        keys = table.column("id").data[selection]
        hashes = hash_keys(keys)
        cache.store_selection_pass(table, "id", selection, (hashes, key_patterns(hashes)))
        assert cache.selection_pass(table, "id", selection) is not None
        del selection, keys
        gc.collect()
        assert watcher() is None

    def test_id_reuse_cannot_alias_selection_passes(self):
        """Force the ``id()``-reuse aliasing scenario deterministically.

        A dead selection array's address can be recycled by a brand-new
        array; the old ``id()``-keyed cache would then serve the dead
        array's pass for the new one.  CPython's allocator makes the reuse
        hard to force reliably from the outside, so this test constructs
        the exact collision state in the token registry — a stale mapping
        under the new array's ``id`` — and asserts the weakref validation
        rejects it: the new array gets a fresh token and a cache miss, not
        the stale pass.
        """
        import gc
        import weakref

        table = self._table()
        cache = HashCache()
        selection = np.array([1, 5, 9], dtype=np.int64)
        keys = table.column("id").data[selection]
        hashes = hash_keys(keys)
        cache.store_selection_pass(table, "id", selection, (hashes, key_patterns(hashes)))
        stale_token = cache._tokens.token(selection)

        imposter = np.array([0, 2, 4], dtype=np.int64)  # different selection
        # The collision: the registry holds an entry under the imposter's id
        # that still describes the (conceptually dead) original array.
        cache._tokens._by_id[id(imposter)] = (weakref.ref(selection), stale_token)
        assert cache._tokens.token(imposter) != stale_token
        assert cache.selection_pass(table, "id", imposter) is None
        # The genuine array is unaffected.
        assert cache.selection_pass(table, "id", selection) is not None

        # And once an array truly dies, its registry entry is retired so the
        # token can never be reissued to an address-recycled successor.
        dead_key = id(selection)
        del selection, keys
        gc.collect()
        assert dead_key not in cache._tokens._by_id

    def test_full_pass_keys_survive_id_reuse_of_column_data(self):
        """Same collision forcing for the full-column pass keys."""
        import weakref

        from repro.storage.table import Table

        cache = HashCache()
        first = Table.from_dict("t", {"id": np.arange(64, dtype=np.int64)})
        cache.bloom_pass(first, "id")
        assert cache.misses == 1
        stale_token = cache._tokens.token(first.column("id").data)

        replacement = Table.from_dict("t", {"id": np.arange(64, 128, dtype=np.int64)})
        cache._tokens._by_id[id(replacement.column("id").data)] = (
            weakref.ref(first.column("id").data),
            stale_token,
        )
        hashes, _ = cache.bloom_pass(replacement, "id")
        np.testing.assert_array_equal(hashes, hash_keys(replacement.column("id").data))
        assert cache.misses == 2  # fresh pass, not the stale entry


# ---------------------------------------------------------------------------
# Precomputed-hash kernel APIs
# ---------------------------------------------------------------------------
class TestPrecomputedHashKernels:
    def test_bloom_probe_with_hashes_bit_matches_keys(self):
        rng = np.random.default_rng(3)
        build = rng.integers(0, 10_000, size=5_000, dtype=np.int64)
        probe = rng.integers(0, 10_000, size=20_000, dtype=np.int64)
        by_keys = BloomFilter(expected_keys=build.size)
        by_keys.insert(build)
        hashes = hash_keys(build)
        by_hashes = BloomFilter(expected_keys=build.size)
        by_hashes.insert(hashes=hashes, patterns=key_patterns(hashes))
        probe_hashes = hash_keys(probe)
        np.testing.assert_array_equal(
            by_keys.probe(probe),
            by_hashes.probe(hashes=probe_hashes, patterns=key_patterns(probe_hashes)),
        )
        # Hashes without patterns also match (patterns derived on the fly).
        np.testing.assert_array_equal(
            by_keys.probe(probe), by_hashes.probe(hashes=probe_hashes)
        )

    def test_bloom_requires_keys_or_hashes(self):
        from repro.errors import ExecutionError

        bloom = BloomFilter(expected_keys=10)
        with pytest.raises(ExecutionError):
            bloom.insert()
        with pytest.raises(ExecutionError):
            bloom.probe()

    def test_radix_partition_with_hashes_bit_matches(self):
        rng = np.random.default_rng(4)
        keys = rng.integers(0, 2**62, size=10_000)
        hashes = radix_hash(keys)
        np.testing.assert_array_equal(
            radix_partition_ids(keys, 6), radix_partition_ids(keys, 6, hashes=hashes)
        )
        direct = radix_partition(keys, 5)
        replayed = radix_partition(keys, 5, hashes=hashes)
        np.testing.assert_array_equal(direct.order, replayed.order)
        np.testing.assert_array_equal(direct.partitioned_keys, replayed.partitioned_keys)

    def test_partitioned_match_with_probe_hashes(self):
        rng = np.random.default_rng(5)
        build = rng.integers(0, 5_000, size=20_000, dtype=np.int64)
        probe = rng.integers(0, 5_000, size=30_000, dtype=np.int64)
        index = PartitionedHashIndex(build, bits=4, hashes=radix_hash(build))
        direct = index.match(probe)
        replayed = index.match(probe, probe_hashes=radix_hash(probe))
        np.testing.assert_array_equal(direct.probe_indices, replayed.probe_indices)
        np.testing.assert_array_equal(direct.build_indices, replayed.build_indices)

    def test_hash_index_with_precomputed_order(self):
        rng = np.random.default_rng(6)
        keys = rng.integers(0, 1_000, size=5_000, dtype=np.int64)
        probe = rng.integers(0, 1_000, size=5_000, dtype=np.int64)
        order = np.argsort(keys, kind="stable")
        fresh = HashIndex(keys)
        replayed = HashIndex(keys, order=order)
        assert replayed._order is not None  # the sort was skipped
        np.testing.assert_array_equal(
            fresh.match(probe).build_indices, replayed.match(probe).build_indices
        )
        np.testing.assert_array_equal(fresh.contains(probe), replayed.contains(probe))
        assert replayed.index_bytes() >= keys.nbytes


# ---------------------------------------------------------------------------
# ArtifactCache unit behavior
# ---------------------------------------------------------------------------
class TestArtifactCache:
    def _key(self, version=1, column="id", fingerprint="full", kind="bloom"):
        return ArtifactKey(
            table="t", table_version=version, column=column, fingerprint=fingerprint, kind=kind
        )

    def test_lru_eviction_within_budget(self):
        cache = ArtifactCache(budget_bytes=100)
        cache.put(self._key(column="a"), "A", 40)
        cache.put(self._key(column="b"), "B", 40)
        assert cache.get(self._key(column="a")) == "A"  # refresh a's LRU slot
        cache.put(self._key(column="c"), "C", 40)  # evicts b, the LRU entry
        assert cache.get(self._key(column="b")) is None
        assert cache.get(self._key(column="a")) == "A"
        assert cache.get(self._key(column="c")) == "C"
        assert cache.evictions == 1
        assert cache.current_bytes == 80

    def test_oversized_artifact_not_admitted(self):
        cache = ArtifactCache(budget_bytes=10)
        cache.put(self._key(), "big", 11)
        assert len(cache) == 0

    def test_resize_evicts_even_a_lone_resident_artifact(self):
        cache = ArtifactCache(budget_bytes=100)
        cache.put(self._key(), "A", 80)
        cache.resize(10)
        assert len(cache) == 0 and cache.current_bytes == 0
        assert cache.budget_bytes == 10

    def test_invalidate_table(self):
        cache = ArtifactCache(budget_bytes=1000)
        cache.put(self._key(column="a"), "A", 10)
        cache.put(self._key(column="b"), "B", 10)
        assert cache.invalidate_table("t") == 2
        assert len(cache) == 0 and cache.current_bytes == 0

    def test_mask_fingerprint(self):
        assert mask_fingerprint(None) == "full"
        mask = np.array([True, False, True])
        assert mask_fingerprint(mask) == mask_fingerprint(mask.copy())
        assert mask_fingerprint(mask) != mask_fingerprint(np.array([True, False, False]))
        # Same packed bits, different length -> different fingerprint.
        assert mask_fingerprint(mask) != mask_fingerprint(np.array([True, False, True, False]))

    def test_catalog_versions_are_monotonic(self):
        db = Database()
        db.register_dataframe("t", {"id": [1, 2, 3]})
        assert db.catalog.version("t") == 1
        db.register_dataframe("t", {"id": [4, 5, 6]}, replace=True)
        assert db.catalog.version("t") == 2
        db.catalog.unregister("t")
        with pytest.raises(CatalogError):
            db.catalog.version("t")
        db.register_dataframe("t", {"id": [7]})
        assert db.catalog.version("t") == 3  # never reused


# ---------------------------------------------------------------------------
# Bit-identity: cached configurations match the uncached path everywhere
# ---------------------------------------------------------------------------
class TestBitIdentityMatrix:
    def _assert_matrix(self, db, query, plan=None):
        if plan is None:
            plan = db.optimizer_plan(query)
        for mode in ExecutionMode:
            baseline = _signature(db.execute(query, mode=mode, plan=plan, options=UNCACHED))
            for name, options in CACHED_CONFIGS.items():
                result = db.execute(query, mode=mode, plan=plan, options=options)
                assert _signature(result) == baseline, (mode, name)
            # A repeated run against the now warm artifact cache must also match.
            warm = db.execute(query, mode=mode, plan=plan, options=CACHED_CONFIGS["all_on"])
            assert _signature(warm) == baseline, (mode, "warm")

    def test_synthetic(self):
        instance = synthetic.figure2_instance(base_size=40)
        self._assert_matrix(instance.database, instance.query)

    def test_tpch(self, tpch_db):
        self._assert_matrix(tpch_db, tpch.query(3))

    def test_job(self, job_db):
        self._assert_matrix(job_db, job.query(1))

    def test_tpcds(self, tpcds_db):
        self._assert_matrix(tpcds_db, tpcds.query(3))

    def test_dsb(self, dsb_db):
        self._assert_matrix(dsb_db, dsb.query(7))

    @pytest.mark.parametrize("backend", ["serial", "chunked", "parallel"])
    def test_backends(self, imdb_db, chain_query, backend):
        baseline = _signature(
            imdb_db.execute(chain_query, mode=ExecutionMode.RPT, options=UNCACHED)
        )
        options = ExecutionOptions(
            execution=ExecutionConfig(
                backend=backend,
                chunk_size=256,
                hash_cache=True,
                selection_vectors=True,
                artifact_cache=True,
                adaptive_transfer=False,  # see _config
            )
        )
        for _ in range(2):  # cold, then warm artifact cache
            result = imdb_db.execute(chain_query, mode=ExecutionMode.RPT, options=options)
            assert _signature(result) == baseline, backend


# ---------------------------------------------------------------------------
# Artifact cache: reuse and invalidation
# ---------------------------------------------------------------------------
class TestArtifactReuseAndInvalidation:
    def _db(self, dim_ids, fact_ids):
        db = Database()
        db.register_dataframe(
            "dim",
            {"id": np.asarray(dim_ids, dtype=np.int64),
             "attr": (np.asarray(dim_ids, dtype=np.int64) % 7)},
            primary_key=["id"],
        )
        db.register_dataframe("fact", {"dim_id": np.asarray(fact_ids, dtype=np.int64)})
        return db

    def _query(self, bound=5):
        return QuerySpec(
            name="artifact_q",
            relations=(
                RelationRef("d", "dim", lt("attr", bound)),
                RelationRef("f", "fact"),
            ),
            joins=(JoinCondition("f", "dim_id", "d", "id"),),
        )

    def test_repeated_query_hits_the_cache(self):
        rng = np.random.default_rng(11)
        db = self._db(np.arange(50), rng.integers(0, 50, size=4_000))
        query = self._query()
        first = db.execute(query, mode=ExecutionMode.RPT, options=CACHED_CONFIGS["all_on"])
        assert first.stats.artifact_cache_hits == 0
        assert first.stats.artifact_cache_misses > 0
        second = db.execute(query, mode=ExecutionMode.RPT, options=CACHED_CONFIGS["all_on"])
        assert second.stats.artifact_cache_hits > 0
        assert _signature(first) == _signature(second)
        assert db.artifact_cache is not None and len(db.artifact_cache) > 0

    def test_stale_filter_never_served_after_table_replace(self):
        rng = np.random.default_rng(12)
        fact_ids = rng.integers(0, 50, size=4_000)
        db = self._db(np.arange(50), fact_ids)
        query = self._query()
        warmup = db.execute(query, mode=ExecutionMode.RPT, options=CACHED_CONFIGS["all_on"])
        db.execute(query, mode=ExecutionMode.RPT, options=CACHED_CONFIGS["all_on"])

        # Replace the dimension so different ids survive the filter.  A
        # stale Bloom filter / hash index would silently keep the old rows.
        new_dim_ids = np.arange(25, 75)
        db.register_dataframe(
            "dim",
            {"id": new_dim_ids, "attr": new_dim_ids % 7},
            primary_key=["id"],
            replace=True,
        )
        # Re-registering reclaims the replaced table's artifacts eagerly.
        assert all(key.table != "dim" for key in db.artifact_cache._entries)
        changed = db.execute(query, mode=ExecutionMode.RPT, options=CACHED_CONFIGS["all_on"])

        fresh = self._db(new_dim_ids, fact_ids)
        expected = fresh.execute(query, mode=ExecutionMode.RPT, options=UNCACHED)
        assert _signature(changed) == _signature(expected)
        assert _signature(changed) != _signature(warmup)  # the change is visible

    def test_different_filters_never_share_artifacts(self):
        rng = np.random.default_rng(13)
        fact_ids = rng.integers(0, 50, size=4_000)
        db = self._db(np.arange(50), fact_ids)
        db.execute(self._query(bound=5), mode=ExecutionMode.RPT, options=CACHED_CONFIGS["all_on"])
        narrow = db.execute(
            self._query(bound=2), mode=ExecutionMode.RPT, options=CACHED_CONFIGS["all_on"]
        )
        fresh = self._db(np.arange(50), fact_ids)
        expected = fresh.execute(self._query(bound=2), mode=ExecutionMode.RPT, options=UNCACHED)
        assert _signature(narrow) == _signature(expected)


# ---------------------------------------------------------------------------
# Thread safety of Bloom filter statistics (ParallelBackend regression)
# ---------------------------------------------------------------------------
class TestBloomStatisticsThreadSafety:
    def test_concurrent_probes_count_exactly(self):
        rng = np.random.default_rng(21)
        bloom = BloomFilter(expected_keys=1_000)
        bloom.insert(rng.integers(0, 10_000, size=1_000, dtype=np.int64))
        probe = rng.integers(0, 10_000, size=10_000, dtype=np.int64)
        expected_passed = int(bloom.probe(probe).sum())
        base_probed = bloom.statistics.keys_probed
        base_passed = bloom.statistics.probes_passed

        rounds = 64
        with ThreadPoolExecutor(max_workers=8) as pool:
            list(pool.map(lambda _: bloom.probe(probe), range(rounds)))
        # Lost updates under concurrent read-modify-write would undercount.
        assert bloom.statistics.keys_probed == base_probed + rounds * probe.size
        assert bloom.statistics.probes_passed == base_passed + rounds * expected_passed

    def test_concurrent_hashed_probes_count_exactly(self):
        rng = np.random.default_rng(22)
        bloom = BloomFilter(expected_keys=500)
        bloom.insert(rng.integers(0, 5_000, size=500, dtype=np.int64))
        probe = rng.integers(0, 5_000, size=5_000, dtype=np.int64)
        hashes = hash_keys(probe)
        patterns = key_patterns(hashes)

        rounds = 64
        barrier = threading.Barrier(8)

        def hammer(_):
            barrier.wait()
            for _ in range(rounds // 8):
                bloom.probe(hashes=hashes, patterns=patterns)

        with ThreadPoolExecutor(max_workers=8) as pool:
            list(pool.map(hammer, range(8)))
        assert bloom.statistics.keys_probed == rounds * probe.size

    def test_parallel_backend_execution_stats_match_serial(self, imdb_db, chain_query):
        serial = imdb_db.execute(
            chain_query,
            mode=ExecutionMode.RPT,
            options=ExecutionOptions(execution=ExecutionConfig(backend="serial")),
        )
        parallel = imdb_db.execute(
            chain_query,
            mode=ExecutionMode.RPT,
            options=ExecutionOptions(
                execution=ExecutionConfig(backend="parallel", chunk_size=128, num_threads=8)
            ),
        )
        assert serial.aggregates == parallel.aggregates
        # Per-step transfer statistics (fed by the probed filters) agree.
        assert [
            (s.source, s.target, s.rows_before, s.rows_after)
            for s in serial.stats.transfer_steps
        ] == [
            (s.source, s.target, s.rows_before, s.rows_after)
            for s in parallel.stats.transfer_steps
        ]


# ---------------------------------------------------------------------------
# Observability: cache counters surface in op stats and traces
# ---------------------------------------------------------------------------
class TestCacheObservability:
    def test_counters_and_trace_markers(self, tpch_db):
        query = tpch.query(3)
        plan = tpch_db.optimizer_plan(query)
        result = tpch_db.execute(
            query, mode=ExecutionMode.RPT, plan=plan, options=CACHED_CONFIGS["hash+selvec"]
        )
        stats = result.stats
        assert stats.hash_reuse_hits > 0
        assert stats.hash_reuse_misses > 0
        assert stats.selection_vector_rows > 0
        assert any(op.hash_hits or op.hash_misses for op in stats.op_stats)
        assert any(op.selvec_rows for op in stats.op_stats)
        trace = stats.op_trace()
        assert "[hash " in trace
        assert "[selvec " in trace
        assert stats.cache_summary().startswith("cache: ")

    def test_artifact_hits_surface_in_trace(self, tpch_db):
        query = tpch.query(5)
        plan = tpch_db.optimizer_plan(query)
        tpch_db.execute(query, mode=ExecutionMode.RPT, plan=plan, options=CACHED_CONFIGS["all_on"])
        warm = tpch_db.execute(
            query, mode=ExecutionMode.RPT, plan=plan, options=CACHED_CONFIGS["all_on"]
        )
        assert warm.stats.artifact_cache_hits > 0
        assert any(op.artifact_hits for op in warm.stats.op_stats)
        assert "[artifact hit]" in warm.stats.op_trace()
        assert "artifact cache" in warm.stats.cache_summary()

    def test_format_op_traces_appends_cache_summary(self, tpch_db):
        from repro.bench import format_op_traces, run_uniform_trace

        results = run_uniform_trace(
            tpch_db, tpch.query(3), modes=(ExecutionMode.RPT,),
            options=CACHED_CONFIGS["hash+selvec"],
        )
        assert "cache: " in format_op_traces(results)

    def test_uncached_runs_record_no_cache_activity(self, tpch_db):
        result = tpch_db.execute(tpch.query(3), mode=ExecutionMode.RPT, options=UNCACHED)
        stats = result.stats
        assert stats.hash_reuse_hits == 0 and stats.hash_reuse_misses == 0
        assert stats.selection_vector_rows == 0
        assert stats.artifact_cache_hits == 0 and stats.artifact_cache_misses == 0
        assert stats.cache_summary() == ""


# ---------------------------------------------------------------------------
# Config plumbing
# ---------------------------------------------------------------------------
class TestConfigResolution:
    def test_defaults(self, monkeypatch):
        for var in ("REPRO_HASH_CACHE", "REPRO_SELECTION_VECTORS", "REPRO_ARTIFACT_CACHE"):
            monkeypatch.delenv(var, raising=False)
        resolved = ExecutionConfig().resolved()
        assert resolved.hash_cache is True
        assert resolved.selection_vectors is True
        assert resolved.artifact_cache is False

    def test_env_fallbacks(self, monkeypatch):
        monkeypatch.setenv("REPRO_HASH_CACHE", "0")
        monkeypatch.setenv("REPRO_SELECTION_VECTORS", "false")
        monkeypatch.setenv("REPRO_ARTIFACT_CACHE", "1")
        monkeypatch.setenv("REPRO_ARTIFACT_CACHE_BUDGET", "12345678")
        resolved = ExecutionConfig().resolved()
        assert resolved.hash_cache is False
        assert resolved.selection_vectors is False
        assert resolved.artifact_cache is True
        assert resolved.artifact_cache_budget_bytes == 12345678

    def test_explicit_knobs_beat_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_HASH_CACHE", "0")
        monkeypatch.setenv("REPRO_ARTIFACT_CACHE", "0")
        resolved = ExecutionConfig(hash_cache=True, artifact_cache=True).resolved()
        assert resolved.hash_cache is True
        assert resolved.artifact_cache is True

    def test_transfer_microbench_runs_small(self):
        from repro.bench import format_transfer_microbench, run_transfer_microbench

        measurements = run_transfer_microbench(fact_sizes=(4_096,), dim_rows=2_048, repeats=1)
        assert len(measurements) == 1
        m = measurements[0]
        assert m.warm_artifact_hits > 0
        table = format_transfer_microbench(measurements)
        assert "uncached" in table
        assert m.as_dict()["fact_rows"] == 4_096
