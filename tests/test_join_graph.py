"""Unit tests for join graph construction and attribute equivalence classes."""

from __future__ import annotations

import pytest

from repro.core import JoinGraph
from repro.errors import PlanError
from repro.query import JoinCondition, QuerySpec, RelationRef


def _query_star() -> QuerySpec:
    """k -(keyword_id)- mk -(movie_id)- t -(movie_id)- mi."""
    return QuerySpec(
        name="star",
        relations=(
            RelationRef("k", "keyword"),
            RelationRef("mk", "movie_keyword"),
            RelationRef("t", "title"),
            RelationRef("mi", "movie_info"),
        ),
        joins=(
            JoinCondition("mk", "keyword_id", "k", "id"),
            JoinCondition("mk", "movie_id", "t", "id"),
            JoinCondition("mi", "movie_id", "t", "id"),
        ),
    )


def _query_composite() -> QuerySpec:
    """Two relations joined on two attributes (composite-key join)."""
    return QuerySpec(
        name="composite",
        relations=(RelationRef("ss", "store_sales"), RelationRef("sr", "store_returns")),
        joins=(
            JoinCondition("ss", "ss_item_sk", "sr", "sr_item_sk"),
            JoinCondition("ss", "ss_ticket_number", "sr", "sr_ticket_number"),
        ),
    )


SIZES = {"k": 100, "mk": 5_000, "t": 2_000, "mi": 15_000}


class TestAttributeClasses:
    def test_transitive_equality_merges_classes(self):
        graph = JoinGraph.from_query(_query_star(), SIZES)
        # mk.movie_id = t.id and mi.movie_id = t.id must end up in one class.
        movie_classes = [
            ac for ac in graph.attribute_classes.values()
            if ("t", "id") in ac.members
        ]
        assert len(movie_classes) == 1
        assert ("mk", "movie_id") in movie_classes[0].members
        assert ("mi", "movie_id") in movie_classes[0].members

    def test_two_classes_total(self):
        graph = JoinGraph.from_query(_query_star(), SIZES)
        assert len(graph.attribute_classes) == 2

    def test_column_of(self):
        graph = JoinGraph.from_query(_query_star(), SIZES)
        (movie_class,) = [ac for ac in graph.attribute_classes.values() if ac.touches("mi")]
        assert movie_class.column_of("mi") == "movie_id"
        assert movie_class.column_of("t") == "id"
        with pytest.raises(PlanError):
            movie_class.column_of("k")


class TestEdges:
    def test_edges_and_weights(self):
        graph = JoinGraph.from_query(_query_star(), SIZES)
        # Transitive equality also creates an mk-mi edge (both contain movie_id).
        pairs = {edge.aliases() for edge in graph.edges}
        assert frozenset({"mk", "k"}) in pairs
        assert frozenset({"mk", "t"}) in pairs
        assert frozenset({"mi", "t"}) in pairs
        assert frozenset({"mk", "mi"}) in pairs
        assert all(edge.weight == 1 for edge in graph.edges)

    def test_composite_edge_weight(self):
        graph = JoinGraph.from_query(_query_composite(), {"ss": 100, "sr": 10})
        assert len(graph.edges) == 1
        assert graph.edges[0].weight == 2

    def test_edge_between_and_other(self):
        graph = JoinGraph.from_query(_query_star(), SIZES)
        edge = graph.edge_between("mk", "k")
        assert edge is not None
        assert edge.other("mk") == "k"
        assert graph.edge_between("k", "mi") is None
        with pytest.raises(PlanError):
            edge.other("t")

    def test_neighbors(self):
        graph = JoinGraph.from_query(_query_star(), SIZES)
        assert graph.neighbors("t") == frozenset({"mk", "mi"})
        assert graph.neighbors("k") == frozenset({"mk"})


class TestGraphProperties:
    def test_sizes_and_largest(self):
        graph = JoinGraph.from_query(_query_star(), SIZES)
        assert graph.size("mi") == 15_000
        assert graph.largest_relation() == "mi"

    def test_missing_sizes_default_to_zero(self):
        graph = JoinGraph.from_query(_query_star())
        assert graph.size("mi") == 0

    def test_connectivity(self):
        graph = JoinGraph.from_query(_query_star(), SIZES)
        assert graph.is_connected()
        assert graph.connected_components() == (frozenset({"k", "mk", "t", "mi"}),)

    def test_disconnected_components(self):
        query = QuerySpec(
            name="two_parts",
            relations=(RelationRef("a", "t"), RelationRef("b", "t"), RelationRef("c", "t"), RelationRef("d", "t")),
            joins=(JoinCondition("a", "x", "b", "x"), JoinCondition("c", "y", "d", "y")),
        )
        graph = JoinGraph.from_query(query)
        assert not graph.is_connected()
        assert len(graph.connected_components()) == 2

    def test_mst_weight_upper_bound(self):
        graph = JoinGraph.from_query(_query_star(), SIZES)
        # keyword_id connects 2 relations (1 edge), movie_id connects 3 (2 edges).
        assert graph.total_mst_weight_upper_bound() == 3


class TestSubgraph:
    def test_subgraph_preserves_parent_attribute_classes(self):
        graph = JoinGraph.from_query(_query_star(), SIZES)
        sub = graph.subgraph(["mk", "mi"])
        # Even without a direct join condition, mk and mi share the movie_id class.
        assert sub.edge_between("mk", "mi") is not None
        assert sub.is_connected()

    def test_subgraph_sizes_carried_over(self):
        graph = JoinGraph.from_query(_query_star(), SIZES)
        sub = graph.subgraph(["t", "mi"])
        assert sub.size("mi") == 15_000

    def test_subgraph_unknown_alias_raises(self):
        graph = JoinGraph.from_query(_query_star(), SIZES)
        with pytest.raises(PlanError):
            graph.subgraph(["zz"])

    def test_subgraph_can_be_disconnected(self):
        graph = JoinGraph.from_query(_query_star(), SIZES)
        sub = graph.subgraph(["k", "mi"])
        assert not sub.is_connected()
