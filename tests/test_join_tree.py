"""Unit tests for join trees, GYO ear removal, and acyclicity tests."""

from __future__ import annotations

import pytest

from repro.core import (
    JoinGraph,
    gyo_reduction,
    has_composite_edges,
    is_alpha_acyclic,
    is_gamma_acyclic,
    is_join_tree,
    is_maximum_spanning_tree,
    join_tree_from_gyo,
    largest_root,
    maximum_spanning_tree_weight,
)
from repro.core.join_tree import attribute_subgraph_connected
from repro.errors import AcyclicityError, PlanError
from repro.query import JoinCondition, QuerySpec, RelationRef


def _graph(relations, joins, sizes=None) -> JoinGraph:
    query = QuerySpec(
        name="q",
        relations=tuple(RelationRef(a, f"table_{a}") for a in relations),
        joins=tuple(JoinCondition(*j) for j in joins),
    )
    return JoinGraph.from_query(query, sizes or {a: 10 * (i + 1) for i, a in enumerate(relations)})


@pytest.fixture()
def acyclic_graph() -> JoinGraph:
    """k - mk - t - mi (with transitive mk-mi edge), acyclic."""
    return _graph(
        ["k", "mk", "t", "mi"],
        [("mk", "kid", "k", "id"), ("mk", "mid", "t", "id"), ("mi", "mid", "t", "id")],
        {"k": 100, "mk": 5000, "t": 2000, "mi": 15000},
    )


@pytest.fixture()
def triangle_graph() -> JoinGraph:
    """A genuine cycle: a-b on x, b-c on y, a-c on z (three distinct attributes)."""
    return _graph(
        ["a", "b", "c"],
        [("a", "x", "b", "x"), ("b", "y", "c", "y"), ("a", "z", "c", "z")],
    )


@pytest.fixture()
def non_gamma_graph() -> JoinGraph:
    """R(A,B,C) ⋈ S(A,B) ⋈ T(B,C): alpha-acyclic but not gamma-acyclic."""
    return _graph(
        ["r", "s", "t"],
        [("r", "a", "s", "a"), ("r", "b", "s", "b"), ("r", "b", "t", "b"), ("r", "c", "t", "c")],
    )


class TestGyo:
    def test_acyclic_reduces_to_one(self, acyclic_graph):
        remaining, sequence = gyo_reduction(acyclic_graph)
        assert len(remaining) <= 1
        assert len(sequence) >= 3

    def test_triangle_does_not_reduce(self, triangle_graph):
        remaining, _ = gyo_reduction(triangle_graph)
        assert len(remaining) == 3

    def test_alpha_acyclicity(self, acyclic_graph, triangle_graph, non_gamma_graph):
        assert is_alpha_acyclic(acyclic_graph)
        assert not is_alpha_acyclic(triangle_graph)
        assert is_alpha_acyclic(non_gamma_graph)

    def test_single_relation_acyclic(self):
        graph = _graph(["a"], [])
        assert is_alpha_acyclic(graph)

    def test_join_tree_from_gyo_is_join_tree(self, acyclic_graph):
        tree = join_tree_from_gyo(acyclic_graph)
        assert is_join_tree(tree)

    def test_join_tree_from_gyo_rejects_cyclic(self, triangle_graph):
        with pytest.raises(AcyclicityError):
            join_tree_from_gyo(triangle_graph)


class TestGammaAcyclicity:
    def test_gamma_acyclic_star(self, acyclic_graph):
        assert is_gamma_acyclic(acyclic_graph)

    def test_non_gamma_example(self, non_gamma_graph):
        assert not is_gamma_acyclic(non_gamma_graph)

    def test_cyclic_is_not_gamma(self, triangle_graph):
        assert not is_gamma_acyclic(triangle_graph)

    def test_composite_edges_flag(self, acyclic_graph, non_gamma_graph):
        assert not has_composite_edges(acyclic_graph)
        assert has_composite_edges(non_gamma_graph)


class TestJoinTreeStructure:
    def test_traversals(self, acyclic_graph):
        tree = largest_root(acyclic_graph)
        post = tree.post_order()
        level = tree.level_order()
        assert set(post) == set(level) == set(acyclic_graph.aliases)
        assert post[-1] == tree.root
        assert level[0] == tree.root
        # Children always appear before parents in post-order.
        for edge in tree.edges:
            assert post.index(edge.child) < post.index(edge.parent)
        # Parents always appear before children in level order.
        for edge in tree.edges:
            assert level.index(edge.parent) < level.index(edge.child)

    def test_parent_child_navigation(self, acyclic_graph):
        tree = largest_root(acyclic_graph)
        assert tree.parent_of(tree.root) is None
        for edge in tree.edges:
            assert tree.parent_of(edge.child) == edge.parent
            assert edge.child in tree.children_of(edge.parent)
        assert tree.depth_of(tree.root) == 0
        assert tree.height() >= 1

    def test_leaves_and_subtrees(self, acyclic_graph):
        tree = largest_root(acyclic_graph)
        leaves = tree.leaves()
        assert leaves
        for leaf in leaves:
            assert tree.children_of(leaf) == ()
            assert tree.subtree_nodes(leaf) == frozenset({leaf})
        assert tree.subtree_nodes(tree.root) == tree.nodes

    def test_bottom_up_join_order_is_connected(self, acyclic_graph):
        tree = largest_root(acyclic_graph)
        order = tree.bottom_up_join_order()
        joined = {order[0]}
        for alias in order[1:]:
            assert acyclic_graph.neighbors(alias) & joined
            joined.add(alias)

    def test_invalid_tree_rejected(self, acyclic_graph):
        from repro.core.join_tree import JoinTree, TreeEdge

        with pytest.raises(PlanError):
            JoinTree(
                root="t",
                edges=(
                    TreeEdge("mk", "t", ("a",)),
                    TreeEdge("mk", "mi", ("a",)),  # two parents for mk
                    TreeEdge("k", "mk", ("b",)),
                ),
                graph=acyclic_graph,
            )


class TestLemma32:
    """Both directions of Lemma 3.2: join tree <=> maximum spanning tree."""

    def test_mst_weight(self, acyclic_graph):
        assert maximum_spanning_tree_weight(acyclic_graph) == acyclic_graph.total_mst_weight_upper_bound()

    def test_largest_root_tree_is_both(self, acyclic_graph, non_gamma_graph):
        for graph in (acyclic_graph, non_gamma_graph):
            tree = largest_root(graph)
            assert is_maximum_spanning_tree(tree)
            assert is_join_tree(tree)

    def test_non_mst_spanning_tree_is_not_join_tree(self, non_gamma_graph):
        """Attach S and T to each other (weight-1 edge) instead of both to R."""
        from repro.core.join_tree import JoinTree, TreeEdge

        bad = JoinTree(
            root="r",
            edges=(
                TreeEdge("s", "r", non_gamma_graph.shared_attributes("s", "r")),
                TreeEdge("t", "s", non_gamma_graph.shared_attributes("t", "s")),
            ),
            graph=non_gamma_graph,
        )
        assert not is_maximum_spanning_tree(bad)
        assert not is_join_tree(bad)

    def test_attribute_subgraph_connectivity_detects_breaks(self, acyclic_graph):
        from repro.core.join_tree import JoinTree, TreeEdge

        # Valid join tree: mk-mi both under t.
        good = largest_root(acyclic_graph)
        for attribute in acyclic_graph.attribute_classes:
            assert attribute_subgraph_connected(good, attribute)

    def test_mst_weight_disconnected_raises(self):
        graph = _graph(["a", "b", "c"], [("a", "x", "b", "x")])
        with pytest.raises(AcyclicityError):
            maximum_spanning_tree_weight(graph)
