"""Unit and property tests for the vectorized execution kernels."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ExecutionError
from repro.exec.kernels import (
    bloom_probe_cost,
    combine_key_columns,
    combine_key_columns_pair,
    estimate_join_cardinality,
    hash_probe_cost,
    match_keys,
    semi_join_mask,
)

small_ints = st.integers(min_value=-50, max_value=50)


def _brute_force_matches(probe, build):
    pairs = []
    for i, p in enumerate(probe):
        for j, b in enumerate(build):
            if p == b:
                pairs.append((i, j))
    return sorted(pairs)


class TestMatchKeys:
    def test_simple_match(self):
        matches = match_keys(np.array([1, 2, 3]), np.array([2, 3, 3, 9]))
        pairs = sorted(zip(matches.probe_indices.tolist(), matches.build_indices.tolist()))
        assert pairs == [(1, 0), (2, 1), (2, 2)]
        assert matches.num_matches == 3

    def test_no_matches(self):
        matches = match_keys(np.array([1, 2]), np.array([5, 6]))
        assert matches.num_matches == 0

    def test_empty_inputs(self):
        assert match_keys(np.array([], dtype=np.int64), np.array([1])).num_matches == 0
        assert match_keys(np.array([1]), np.array([], dtype=np.int64)).num_matches == 0

    def test_duplicates_both_sides(self):
        matches = match_keys(np.array([7, 7]), np.array([7, 7, 7]))
        assert matches.num_matches == 6

    @given(
        st.lists(small_ints, max_size=60),
        st.lists(small_ints, max_size=60),
    )
    @settings(max_examples=80, deadline=None)
    def test_matches_equal_brute_force(self, probe, build):
        matches = match_keys(np.asarray(probe, dtype=np.int64), np.asarray(build, dtype=np.int64))
        got = sorted(zip(matches.probe_indices.tolist(), matches.build_indices.tolist()))
        assert got == _brute_force_matches(probe, build)


class TestSemiJoinMask:
    def test_basic(self):
        mask = semi_join_mask(np.array([1, 2, 3, 4]), np.array([2, 4, 9]))
        assert mask.tolist() == [False, True, False, True]

    def test_empty_filter_removes_all(self):
        assert semi_join_mask(np.array([1, 2]), np.array([], dtype=np.int64)).sum() == 0

    def test_empty_keys(self):
        assert semi_join_mask(np.array([], dtype=np.int64), np.array([1])).shape == (0,)

    @given(st.lists(small_ints, max_size=60), st.lists(small_ints, max_size=60))
    @settings(max_examples=60, deadline=None)
    def test_matches_python_membership(self, keys, filter_keys):
        mask = semi_join_mask(np.asarray(keys, dtype=np.int64), np.asarray(filter_keys, dtype=np.int64))
        expected = [k in set(filter_keys) for k in keys]
        assert mask.tolist() == expected


class TestCompositeKeys:
    def test_single_column_passthrough(self):
        col = np.array([4, 5, 6], dtype=np.int64)
        assert combine_key_columns([col]).tolist() == [4, 5, 6]

    def test_composite_equality_preserved(self):
        left = [np.array([1, 1, 2]), np.array([10, 20, 10])]
        right = [np.array([1, 2, 1]), np.array([20, 10, 30])]
        lk, rk = combine_key_columns_pair(left, right)
        # (1,20) appears at left[1] and right[0]; (2,10) at left[2] and right[1].
        assert lk[1] == rk[0]
        assert lk[2] == rk[1]
        # Distinct composites stay distinct.
        assert lk[0] != rk[0] and lk[0] != rk[2]

    def test_mismatched_column_counts_raise(self):
        with pytest.raises(ExecutionError):
            combine_key_columns_pair([np.array([1])], [np.array([1]), np.array([2])])

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ExecutionError):
            combine_key_columns([np.array([1, 2]), np.array([1])])

    def test_empty_column_list_raises(self):
        with pytest.raises(ExecutionError):
            combine_key_columns([])

    @given(
        st.lists(st.tuples(small_ints, small_ints), min_size=1, max_size=40),
        st.lists(st.tuples(small_ints, small_ints), min_size=1, max_size=40),
    )
    @settings(max_examples=60, deadline=None)
    def test_composite_join_equals_tuple_join(self, left, right):
        """Joining on the combined key is identical to joining on the tuple."""
        left_cols = [np.array([p[0] for p in left]), np.array([p[1] for p in left])]
        right_cols = [np.array([p[0] for p in right]), np.array([p[1] for p in right])]
        lk, rk = combine_key_columns_pair(left_cols, right_cols)
        matches = match_keys(lk, rk)
        got = sorted(zip(matches.probe_indices.tolist(), matches.build_indices.tolist()))
        expected = sorted(
            (i, j) for i, lp in enumerate(left) for j, rp in enumerate(right) if lp == rp
        )
        assert got == expected


class TestCostHelpers:
    def test_join_cardinality_estimate(self):
        assert estimate_join_cardinality(0, 10, 1, 1) == 0.0
        assert estimate_join_cardinality(100, 200, 50, 100) == pytest.approx(200.0)

    def test_probe_costs_monotone(self):
        assert hash_probe_cost(1000, 10_000_000) > hash_probe_cost(1000, 100)
        assert bloom_probe_cost(1000, 10_000_000) > bloom_probe_cost(1000, 100)
        assert hash_probe_cost(0, 100) == 0.0
        assert bloom_probe_cost(0, 100) == 0.0

    def test_bloom_probe_cheaper_than_hash_probe(self):
        for build in (1_000, 100_000, 10_000_000):
            assert bloom_probe_cost(10_000, build) < hash_probe_cost(10_000, build)
