"""Unit tests for LargestRoot, Small2Large, and transfer schedule derivation."""

from __future__ import annotations

import random

import pytest

from repro.core import (
    JoinGraph,
    TransferPass,
    is_join_tree,
    is_maximum_spanning_tree,
    largest_root,
    largest_root_random,
    schedule_from_transfer_graph,
    schedule_from_tree,
    small2large,
)
from repro.core.largest_root import LargestRootOptions
from repro.errors import PlanError
from repro.query import JoinCondition, QuerySpec, RelationRef


def _graph(relations, joins, sizes) -> JoinGraph:
    query = QuerySpec(
        name="q",
        relations=tuple(RelationRef(a, f"table_{a}") for a in relations),
        joins=tuple(JoinCondition(*j) for j in joins),
    )
    return JoinGraph.from_query(query, sizes)


@pytest.fixture()
def job3a_graph() -> JoinGraph:
    """The Figure 1 example: movie_keyword / movie_info / title / keyword."""
    return _graph(
        ["mk", "mi", "t", "k"],
        [("mk", "kid", "k", "id"), ("mk", "mid", "t", "id"), ("mi", "mid", "t", "id")],
        {"mk": 4_500_000, "mi": 15_000_000, "t": 2_500_000, "k": 134_000},
    )


@pytest.fixture()
def figure2_graph() -> JoinGraph:
    """Figure 2: R(A,B) ⋈ S(A,C) ⋈ T(B,D) with |R| < |S| < |T|."""
    return _graph(
        ["r", "s", "t"],
        [("r", "a", "s", "a"), ("r", "b", "t", "b")],
        {"r": 100, "s": 200, "t": 400},
    )


class TestLargestRoot:
    def test_root_is_largest_relation(self, job3a_graph):
        tree = largest_root(job3a_graph)
        assert tree.root == "mi"

    def test_produces_join_tree(self, job3a_graph, figure2_graph):
        for graph in (job3a_graph, figure2_graph):
            tree = largest_root(graph)
            assert is_maximum_spanning_tree(tree)
            assert is_join_tree(tree)

    def test_figure1_tree_shape(self, job3a_graph):
        """The paper's Figure 1b: mi at the root, mk below it, k and t below mk."""
        tree = largest_root(job3a_graph)
        assert tree.parent_of("mk") == "mi"
        assert tree.parent_of("k") == "mk"
        assert tree.parent_of("t") == "mk"

    def test_root_override(self, job3a_graph):
        tree = largest_root(job3a_graph, root="t")
        assert tree.root == "t"
        assert is_join_tree(tree)

    def test_unknown_root_rejected(self, job3a_graph):
        with pytest.raises(PlanError):
            largest_root(job3a_graph, root="zz")

    def test_disconnected_graph_rejected(self):
        graph = _graph(["a", "b", "c"], [("a", "x", "b", "x")], {"a": 1, "b": 2, "c": 3})
        with pytest.raises(PlanError):
            largest_root(graph)

    def test_single_relation(self):
        graph = _graph(["a"], [], {"a": 10})
        tree = largest_root(graph)
        assert tree.root == "a"
        assert tree.edges == ()

    def test_tie_breaking_toggle_still_valid(self, job3a_graph):
        tree = largest_root(job3a_graph, LargestRootOptions(prefer_large_outside=False))
        assert is_join_tree(tree)

    def test_cyclic_graph_still_spanning_tree(self):
        graph = _graph(
            ["a", "b", "c"],
            [("a", "x", "b", "x"), ("b", "y", "c", "y"), ("a", "z", "c", "z")],
            {"a": 10, "b": 20, "c": 30},
        )
        tree = largest_root(graph)
        assert tree.nodes == frozenset({"a", "b", "c"})
        assert len(tree.edges) == 2
        assert tree.root == "c"

    def test_randomized_variant_keeps_largest_root(self, job3a_graph):
        rng = random.Random(0)
        for _ in range(10):
            tree = largest_root_random(job3a_graph, rng)
            assert tree.root == "mi"
            assert tree.nodes == frozenset(job3a_graph.aliases)
            # All edges have weight 1 here, so every spanning tree is a join tree.
            assert is_join_tree(tree)


class TestSmall2Large:
    def test_edges_point_small_to_large(self, figure2_graph):
        transfer_graph = small2large(figure2_graph)
        directions = {(e.source, e.target) for e in transfer_graph.edges}
        assert directions == {("r", "s"), ("r", "t")}

    def test_topological_order_prefers_small_first(self, figure2_graph):
        order = small2large(figure2_graph).topological_order()
        assert order[0] == "r"
        assert set(order) == {"r", "s", "t"}

    def test_figure2_schedule_never_connects_s_and_t(self, figure2_graph):
        """The paper's Figure 2 failure: S and T never exchange filters."""
        schedule = schedule_from_transfer_graph(small2large(figure2_graph))
        pairs = {(s.source, s.target) for s in schedule}
        assert ("s", "t") not in pairs and ("t", "s") not in pairs

    def test_largest_root_schedule_connects_s_and_t_transitively(self, figure2_graph):
        """RPT routes S's filter to T through R: forward s->r then backward r->t."""
        tree = largest_root(figure2_graph)
        schedule = schedule_from_tree(tree)
        forward_targets_of_s = [s.target for s in schedule.forward_steps if s.source == "s"]
        assert "r" in forward_targets_of_s
        backward = [(s.source, s.target) for s in schedule.backward_steps]
        assert ("r", "t") in backward or ("r", "s") in backward


class TestSchedules:
    def test_tree_schedule_matches_figure1(self, job3a_graph):
        """Forward: mk⋉k, mk⋉t, mi⋉mk. Backward: mk⋉mi, k⋉mk, t⋉mk."""
        schedule = schedule_from_tree(largest_root(job3a_graph))
        forward = [(s.source, s.target) for s in schedule.forward_steps]
        backward = [(s.source, s.target) for s in schedule.backward_steps]
        assert set(forward) == {("k", "mk"), ("t", "mk"), ("mk", "mi")}
        assert forward[-1] == ("mk", "mi")  # mk's own filter is built after it was reduced
        assert set(backward) == {("mi", "mk"), ("mk", "k"), ("mk", "t")}
        assert backward[0] == ("mi", "mk")

    def test_schedule_pass_split(self, job3a_graph):
        schedule = schedule_from_tree(largest_root(job3a_graph))
        assert len(schedule.forward_steps) == 3
        assert len(schedule.backward_steps) == 3
        assert schedule.num_steps == 6
        assert all(s.pass_ is TransferPass.FORWARD for s in schedule.forward_steps)
        assert all(s.pass_ is TransferPass.BACKWARD for s in schedule.backward_steps)

    def test_every_non_root_relation_reduced_in_both_passes(self, job3a_graph):
        tree = largest_root(job3a_graph)
        schedule = schedule_from_tree(tree)
        forward_targets = {s.target for s in schedule.forward_steps}
        backward_targets = {s.target for s in schedule.backward_steps}
        non_leaves = {n for n in tree.nodes if tree.children_of(n)}
        assert forward_targets == non_leaves
        assert backward_targets == set(tree.nodes) - {tree.root}

    def test_without_backward_pass(self, job3a_graph):
        schedule = schedule_from_tree(largest_root(job3a_graph)).without_backward_pass()
        assert schedule.backward_steps == ()
        assert len(schedule.forward_steps) == 3

    def test_transfer_graph_schedule_covers_all_edges_twice(self, job3a_graph):
        transfer_graph = small2large(job3a_graph)
        schedule = schedule_from_transfer_graph(transfer_graph)
        assert len(schedule.forward_steps) == len(transfer_graph.edges)
        assert len(schedule.backward_steps) == len(transfer_graph.edges)

    def test_relations_reduced(self, job3a_graph):
        schedule = schedule_from_tree(largest_root(job3a_graph))
        assert schedule.relations_reduced() == frozenset(job3a_graph.aliases)
