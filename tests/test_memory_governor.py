"""Tests for the MemoryGovernor and governed (budgeted) execution.

Covers the reservation/release invariants, LRU eviction ordering through the
:class:`~repro.exec.spill.SpillManager` callback, reload accounting on
touch, and the end-to-end guarantee the Figure 15 "+spill" setup relies on:
a run under a 50% memory budget spills — and still bit-matches the
unbudgeted result under every execution mode.
"""

from __future__ import annotations

import pytest

from repro import Database, ExecutionConfig, ExecutionMode, ExecutionOptions
from repro.exec.spill import SpillManager
from repro.storage.buffer import MemoryGovernor


# ---------------------------------------------------------------------------
# Reservation / release invariants
# ---------------------------------------------------------------------------
class TestReservationInvariants:
    def test_reserve_and_release_track_bytes(self):
        governor = MemoryGovernor()
        governor.reserve("a", 100)
        governor.reserve("b", 50)
        assert governor.reserved_bytes == 150
        assert governor.peak_reserved_bytes == 150
        governor.release("a")
        assert governor.reserved_bytes == 50
        # Peak is a high-water mark: releases never lower it.
        assert governor.peak_reserved_bytes == 150

    def test_re_reserving_resizes(self):
        governor = MemoryGovernor()
        governor.reserve("a", 100)
        governor.reserve("a", 40)
        assert governor.reserved_bytes == 40

    def test_release_is_idempotent_and_unknown_touch_is_noop(self):
        governor = MemoryGovernor()
        governor.reserve("a", 10)
        governor.release("a")
        governor.release("a")
        assert governor.reserved_bytes == 0
        assert governor.touch("never-reserved") is False

    def test_negative_inputs_rejected(self):
        with pytest.raises(ValueError):
            MemoryGovernor(budget_bytes=-1)
        governor = MemoryGovernor()
        with pytest.raises(ValueError):
            governor.reserve("a", -5)

    def test_unbudgeted_governor_never_spills(self):
        governor = MemoryGovernor()
        for i in range(10):
            governor.reserve(f"r{i}", 1_000_000)
        assert governor.spill_events == 0
        assert not governor.over_budget
        assert governor.peak_reserved_bytes == 10_000_000


# ---------------------------------------------------------------------------
# Eviction ordering and reload accounting
# ---------------------------------------------------------------------------
class TestEviction:
    def test_lru_eviction_order(self):
        spill = SpillManager()
        governor = MemoryGovernor(budget_bytes=250, spill_handler=spill)
        governor.reserve("a", 100)
        governor.reserve("b", 100)
        governor.touch("a")  # b is now the least recently used
        governor.reserve("c", 100)  # over budget: evict exactly one victim
        assert governor.is_spilled("b")
        assert not governor.is_spilled("a")
        assert not governor.is_spilled("c")
        assert governor.spill_events == 1
        assert governor.spilled_bytes == 100
        assert spill.spilled_bytes == 100

    def test_admitting_reservation_is_pinned(self):
        governor = MemoryGovernor(budget_bytes=50, spill_handler=SpillManager())
        governor.reserve("big", 100)  # alone and over budget: admitted anyway
        assert not governor.is_spilled("big")
        assert governor.over_budget
        assert governor.spill_events == 0

    def test_non_evictable_reservations_survive(self):
        governor = MemoryGovernor(budget_bytes=150, spill_handler=SpillManager())
        governor.reserve("pinned", 100, evictable=False)
        governor.reserve("victim", 100)
        governor.reserve("new", 100)
        assert not governor.is_spilled("pinned")
        assert governor.is_spilled("victim")

    def test_touch_reloads_spilled_data_and_charges_the_read(self):
        spill = SpillManager()
        governor = MemoryGovernor(budget_bytes=150, spill_handler=spill)
        governor.reserve("a", 100)
        governor.reserve("b", 100)  # evicts a
        assert governor.is_spilled("a")
        assert governor.touch("a") is True  # reload: a resident again, b evicted
        assert not governor.is_spilled("a")
        assert governor.is_spilled("b")
        assert governor.reload_events == 1
        assert governor.reloaded_bytes == 100
        assert spill.reloaded_bytes == 100
        assert spill.stats.bytes_written_to_disk == 200  # both evictions charged
        assert spill.simulated_seconds() > 0.0

    def test_resident_bytes_exclude_spilled(self):
        governor = MemoryGovernor(budget_bytes=100, spill_handler=SpillManager())
        governor.reserve("a", 80)
        governor.reserve("b", 80)
        assert governor.is_spilled("a")
        assert governor.reserved_bytes == 80


# ---------------------------------------------------------------------------
# Governed execution bit-matches the unbudgeted run
# ---------------------------------------------------------------------------
class TestGovernedExecution:
    def _config(self, budget=None) -> ExecutionConfig:
        # Partition aggressively so the governor has partition-granular
        # reservations to spill even on the small test fixture.
        return ExecutionConfig(
            backend="serial",
            memory_budget_bytes=budget,
            partition_threshold=1,
            partition_bits=3,
        )

    def test_unbudgeted_run_records_peak(self, imdb_db, chain_query):
        result = imdb_db.execute(
            chain_query, options=ExecutionOptions(execution=self._config())
        )
        assert result.stats.peak_memory_bytes > 0
        assert result.stats.spill_events == 0

    @pytest.mark.parametrize("mode", list(ExecutionMode))
    def test_half_budget_spills_and_bit_matches(self, imdb_db, chain_query, mode):
        free = imdb_db.execute(
            chain_query, mode=mode, options=ExecutionOptions(execution=self._config())
        )
        budget = max(free.stats.peak_memory_bytes // 2, 1)
        governed = imdb_db.execute(
            chain_query, mode=mode, options=ExecutionOptions(execution=self._config(budget))
        )
        assert governed.stats.spill_events > 0, mode
        assert governed.stats.spilled_bytes > 0, mode
        assert governed.stats.timings.simulated_io > 0.0, mode
        # The budget changes only the accounting, never the answer.
        assert governed.aggregates == free.aggregates, mode
        assert governed.output_rows == free.output_rows, mode
        # Per-op trace attributes the spills to the ops that crossed the budget.
        assert sum(op.spilled_bytes for op in governed.op_stats) == governed.stats.spilled_bytes

    def test_env_var_budget(self, imdb_db, star_query, monkeypatch):
        free = imdb_db.execute(star_query, mode=ExecutionMode.RPT)
        monkeypatch.setenv("REPRO_MEMORY_BUDGET", str(max(free.stats.peak_memory_bytes // 2, 1)))
        governed = imdb_db.execute(star_query, mode=ExecutionMode.RPT)
        assert governed.execution_config.memory_budget_bytes is not None
        assert governed.aggregates == free.aggregates
