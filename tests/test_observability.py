"""Observability subsystem: tracing, metrics, query log, EXPLAIN ANALYZE.

The contract under test has three legs:

* **Additivity** — tracing observes executions without participating in
  them, so a traced run is bit-identical to an untraced one on every
  execution mode and every backend, and two traced runs of the same query
  produce the same timing-free span-tree *shape*.
* **Exposition** — :class:`MetricsRegistry` renders valid Prometheus text
  that the bundled validating parser round-trips; ``Server.stats()``
  surfaces a metrics snapshot and the bounded query log.
* **Reporting** — the per-op trace / summary lines and the trace timeline
  are golden-tested so report formats change deliberately, not by drift.
"""

from __future__ import annotations

import itertools
import json
import types

import numpy as np
import pytest

from repro import (
    Database,
    ExecutionMode,
    ExplainAnalyzeResult,
    Server,
    ServerConfig,
)
from repro.bench.reporting import format_op_traces
from repro.engine.database import ExecutionOptions, ExplainResult
from repro.engine.modes import ExecutionConfig
from repro.errors import AdmissionRejected, ReproError
from repro.exec.statistics import ExecutionStats, OpStats
from repro.obs import (
    MetricsRegistry,
    QueryLog,
    QueryLogRecord,
    Span,
    Tracer,
    parse_exposition,
    render_exposition,
    render_timeline,
    sql_hash,
)
from repro.workloads import sqlfiles


def _options(**execution) -> ExecutionOptions:
    return ExecutionOptions(execution=ExecutionConfig(**execution))


def _fake_clock():
    """A deterministic monotonic clock ticking 1.0 per call."""
    counter = itertools.count()
    return lambda: float(next(counter))


def _star_db(rows: int = 8_000, dims: int = 40) -> Database:
    rng = np.random.default_rng(7)
    db = Database()
    db.register_dataframe(
        "d",
        {"id": np.arange(dims, dtype=np.int64), "grp": np.arange(dims, dtype=np.int64) % 10},
        primary_key=["id"],
    )
    db.register_dataframe(
        "f",
        {
            "id": np.arange(rows, dtype=np.int64),
            "d_id": rng.integers(0, dims, rows).astype(np.int64),
            "v": rng.integers(0, 1000, rows).astype(np.int64),
        },
        primary_key=["id"],
    )
    return db


STAR_SQL = (
    "SELECT COUNT(*) AS n, SUM(f.v) AS s FROM f, d "
    "WHERE f.d_id = d.id AND d.grp < 5 AND f.v > 50"
)


# ---------------------------------------------------------------------------
# Tracer / Span primitives
# ---------------------------------------------------------------------------
class TestTracer:
    def test_nesting_shape_and_exact_timings(self):
        tracer = Tracer(clock=_fake_clock())
        query = tracer.start("q", "query", mode="rpt")
        phase = tracer.start("transfer", "phase")
        op = tracer.start("bloom_probe", "op")
        tracer.finish(op, rows=10)
        tracer.finish(phase)
        tracer.finish(query)

        assert tracer.root is query
        assert query.shape() == (
            "query",
            "q",
            (("phase", "transfer", (("op", "bloom_probe", ()),)),),
        )
        # Clock ticks: q@0, phase@1, op@2, finish(op)@3, finish(phase)@4,
        # finish(query)@5 — spans carry exact injected timestamps.
        assert (op.start, op.end, op.seconds) == (2.0, 3.0, 1.0)
        assert (query.start, query.end) == (0.0, 5.0)
        assert op.attrs == {"rows": 10}
        assert [s.name for s in query.walk()] == ["q", "transfer", "bloom_probe"]
        assert [s.name for s in query.find("op")] == ["bloom_probe"]

    def test_finish_unwinds_unclosed_children(self):
        """Finishing an outer span closes abandoned inner spans too (the
        exception-unwind path when an op raises mid-trace)."""
        tracer = Tracer(clock=_fake_clock())
        outer = tracer.start("q", "query")
        inner = tracer.start("op", "op")
        tracer.finish(outer)
        assert inner.end == outer.end
        assert tracer.current is None

    def test_events_attach_to_current_span(self):
        tracer = Tracer(clock=_fake_clock())
        with tracer.span("q", "query"):
            event = tracer.event("governor:spill", bytes=128)
        assert event.kind == "event"
        assert event.seconds == 0.0
        assert tracer.root.children == [event]
        assert event.attrs == {"bytes": 128}

    def test_second_top_level_span_reparents_under_root(self):
        """A retry after a typed error keeps one root per traced query."""
        tracer = Tracer(clock=_fake_clock())
        first = tracer.start("attempt-1", "query")
        tracer.finish(first)
        second = tracer.start("attempt-2", "query")
        tracer.finish(second)
        assert tracer.root is first
        assert second in first.children

    def test_as_dict_is_json_ready(self):
        tracer = Tracer(clock=_fake_clock())
        with tracer.span("q", "query", mode="pt"):
            with tracer.span("scan", "op"):
                pass
        payload = json.loads(json.dumps(tracer.root.as_dict()))
        assert payload["kind"] == "query"
        assert payload["children"][0]["name"] == "scan"


# ---------------------------------------------------------------------------
# Metrics registry
# ---------------------------------------------------------------------------
class TestMetrics:
    def test_counter_semantics(self):
        registry = MetricsRegistry()
        queries = registry.counter("queries_total", "Queries.", labels=("outcome",))
        queries.inc(outcome="ok")
        queries.inc(2.0, outcome="ok")
        queries.inc(outcome="failed")
        assert queries.value(outcome="ok") == 3.0
        assert queries.value(outcome="failed") == 1.0
        with pytest.raises(ReproError):
            queries.inc(-1.0, outcome="ok")

    def test_gauge_semantics(self):
        registry = MetricsRegistry()
        active = registry.gauge("active", "Active queries.")
        active.set(4.0)
        active.inc()
        active.dec(2.0)
        assert active.value() == 3.0

    def test_histogram_buckets_are_cumulative(self):
        registry = MetricsRegistry()
        latency = registry.histogram("latency_seconds", "Latency.", buckets=(0.01, 0.1, 1.0))
        for value in (0.005, 0.05, 0.5, 5.0):
            latency.observe(value)
        samples = {
            (suffix, labels.get("le")): value
            for suffix, labels, value in latency.samples()
        }
        assert samples[("_bucket", "0.01")] == 1.0
        assert samples[("_bucket", "0.1")] == 2.0
        assert samples[("_bucket", "1.0")] == 3.0
        assert samples[("_bucket", "+Inf")] == 4.0
        assert samples[("_count", None)] == 4.0
        assert samples[("_sum", None)] == pytest.approx(5.555)

    def test_registration_is_idempotent_but_shape_checked(self):
        registry = MetricsRegistry()
        first = registry.counter("hits_total", "Hits.", labels=("kind",))
        again = registry.counter("hits_total", "Hits.", labels=("kind",))
        assert again is first
        with pytest.raises(ReproError):
            registry.gauge("hits_total", "Hits.")
        with pytest.raises(ReproError):
            registry.counter("hits_total", "Hits.", labels=("other",))
        with pytest.raises(ReproError):
            registry.counter("bad name", "Nope.")

    def test_snapshot_flattens_series(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "C.", labels=("kind",)).inc(kind="a")
        registry.gauge("g", "G.").set(7.0)
        snap = registry.snapshot()
        assert snap['c_total{kind="a"}'] == 1.0
        assert snap["g"] == 7.0


# ---------------------------------------------------------------------------
# Prometheus exposition
# ---------------------------------------------------------------------------
class TestExposition:
    def _populated_registry(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        registry.counter("repro_queries_total", "Completed queries.", labels=("outcome",)).inc(
            3.0, outcome="ok"
        )
        registry.gauge("repro_active_queries", "In-flight queries.").set(2.0)
        registry.histogram(
            "repro_query_seconds", "Latency.", buckets=(0.1, 1.0)
        ).observe(0.25)
        return registry

    def test_render_parse_round_trip(self):
        registry = self._populated_registry()
        text = render_exposition(registry)
        assert "# HELP repro_queries_total Completed queries." in text
        assert "# TYPE repro_query_seconds histogram" in text
        series = parse_exposition(text)
        assert series == registry.snapshot()
        assert series['repro_queries_total{outcome="ok"}'] == 3.0
        assert series['repro_query_seconds_bucket{le="+Inf"}'] == 1.0

    def test_parser_rejects_malformed_lines(self):
        with pytest.raises(ReproError):
            parse_exposition("not a metric line at all!")
        with pytest.raises(ReproError):
            parse_exposition('ok_total{unquoted=x} 1')
        with pytest.raises(ReproError):
            parse_exposition("ok_total notanumber")
        with pytest.raises(ReproError):
            parse_exposition("# COMMENT of unknown kind")

    def test_empty_registry_renders_empty(self):
        assert render_exposition(MetricsRegistry()) == ""
        assert parse_exposition("") == {}


# ---------------------------------------------------------------------------
# Query log
# ---------------------------------------------------------------------------
def _record(name: str, seconds: float) -> QueryLogRecord:
    return QueryLogRecord(
        query_name=name,
        sql_hash=sql_hash(name),
        mode="rpt",
        backend="serial",
        plan_fingerprint="abc",
        session="s1",
        admission_wait_seconds=0.0,
        duration_seconds=seconds,
        output_rows=1,
        op_seconds={"scan": seconds},
        cache={},
        adaptive={},
        degradations={},
    )


class TestQueryLog:
    def test_ring_buffer_evicts_oldest(self):
        log = QueryLog(capacity=3)
        for i in range(5):
            log.append(_record(f"q{i}", float(i)))
        assert len(log) == 3
        assert log.total_appended == 5
        assert [r.query_name for r in log.records()] == ["q2", "q3", "q4"]

    def test_slowest_orders_by_duration(self):
        log = QueryLog(capacity=8)
        for name, seconds in (("fast", 0.01), ("slow", 1.5), ("mid", 0.2)):
            log.append(_record(name, seconds))
        assert [r.query_name for r in log.slowest(2)] == ["slow", "mid"]

    def test_to_jsonl_round_trips(self):
        log = QueryLog(capacity=4)
        log.append(_record("q", 0.5))
        lines = log.to_jsonl().splitlines()
        assert len(lines) == 1
        payload = json.loads(lines[0])
        assert payload["query_name"] == "q"
        assert payload["duration_seconds"] == 0.5

    def test_sql_hash_is_deterministic(self):
        assert sql_hash("SELECT 1") == sql_hash("SELECT 1")
        assert sql_hash("SELECT 1") != sql_hash("SELECT 2")
        assert sql_hash("") == ""


# ---------------------------------------------------------------------------
# Golden report formats
# ---------------------------------------------------------------------------
class TestGoldenReports:
    def _stats(self) -> ExecutionStats:
        stats = ExecutionStats(query_name="golden", mode="rpt")
        stats.op_stats.append(
            OpStats(index=0, kind="scan", detail="scan f (f)", rows_in=10, rows_out=10, seconds=0.5)
        )
        stats.op_stats.append(
            OpStats(
                index=1,
                kind="bloom_probe",
                detail="probe f.d_id",
                rows_in=10,
                rows_out=4,
                seconds=0.25,
                morsels=2,
            )
        )
        return stats

    def test_op_trace_golden(self):
        expected = (
            "  # op                        rows in   rows out    seconds  morsels  detail\n"
            "  0 scan                           10         10   0.500000        0  scan f (f)\n"
            "  1 bloom_probe                    10          4   0.250000        2  probe f.d_id"
        )
        assert self._stats().op_trace() == expected

    def test_execution_summary_golden(self):
        stats = self._stats()
        stats.hash_reuse_hits = 2
        stats.hash_reuse_misses = 1
        stats.adaptive_steps_skipped = 1
        stats.record_degradation("governor:spill-retry")
        stats.record_degradation("governor:spill-retry")
        assert stats.cache_summary() == "cache: hash passes 2h/1m"
        assert stats.adaptive_summary() == "adaptive: skipped 1 step(s)"
        assert stats.degradation_summary() == "degraded: governor:spill-retry x2"
        assert stats.execution_summary() == (
            "cache: hash passes 2h/1m | adaptive: skipped 1 step(s) | "
            "degraded: governor:spill-retry x2"
        )

    def test_degradation_rungs_never_double_count(self):
        """Regression: per-event rungs merge to one list entry + a count.

        The merge across degradation retry paths used to append the same
        rung once per event, so an inline-fallback run with N morsels
        reported the rung N times in merged summaries.
        """
        stats = ExecutionStats()
        for _ in range(3):
            stats.record_degradation("process:inline-fallback")
        stats.record_degradation("governor:spill-retry")
        assert stats.degradations == ["process:inline-fallback", "governor:spill-retry"]
        assert stats.degradation_counts == {
            "process:inline-fallback": 3,
            "governor:spill-retry": 1,
        }
        assert stats.degradation_summary() == (
            "degraded: process:inline-fallback x3; governor:spill-retry"
        )

    def test_format_op_traces_golden(self):
        fake = types.SimpleNamespace(stats=self._stats())
        report = format_op_traces({ExecutionMode.RPT: fake}).splitlines()
        assert report[0] == "== RPT =="
        assert report[1].startswith("  # op")
        assert any("bloom_probe" in line for line in report)

    def test_render_timeline_golden(self):
        tracer = Tracer(clock=_fake_clock())
        query = tracer.start("q", "query", mode="rpt")
        op = tracer.start("scan", "op")
        tracer.event("spill", bytes=64)
        tracer.finish(op)
        tracer.finish(query)
        expected = (
            "query q                        +    0.000ms  4000.000ms  [mode=rpt]\n"
            "  op    scan                     + 1000.000ms  2000.000ms\n"
            "    @ 2000.000ms  spill  [bytes=64]"
        )
        assert render_timeline(tracer.root) == expected


# ---------------------------------------------------------------------------
# Traced execution: bit-identity, determinism, env gating
# ---------------------------------------------------------------------------
class TestTracedExecution:
    @pytest.mark.parametrize("backend", ["serial", "chunked", "parallel", "process"])
    def test_traced_runs_bit_identical_all_modes(self, imdb_db, star_query, all_modes, backend):
        for mode in all_modes:
            base = imdb_db.execute(star_query, mode=mode, options=_options(backend=backend))
            traced = imdb_db.execute(
                star_query, mode=mode, options=_options(backend=backend, tracing=True)
            )
            assert base.trace is None
            assert traced.trace is not None
            assert traced.aggregates == base.aggregates
            assert traced.output_rows == base.output_rows
            ops = traced.trace.find("op")
            assert ops, f"no op spans for {mode} on {backend}"
            assert traced.trace.kind == "query"
            assert traced.trace.attrs.get("backend") == backend

    def test_trace_shape_is_deterministic(self, imdb_db, star_query):
        first = imdb_db.execute(star_query, options=_options(backend="serial", tracing=True))
        second = imdb_db.execute(star_query, options=_options(backend="serial", tracing=True))
        assert first.trace.shape() == second.trace.shape()

    def test_fanout_backends_record_batch_spans(self, imdb_db, star_query):
        traced = imdb_db.execute(
            star_query, options=_options(backend="parallel", num_threads=2, tracing=True)
        )
        batches = traced.trace.find("batch")
        assert batches
        assert all(span.name == "morsels" for span in batches)
        assert sum(int(span.attrs.get("count", 0)) for span in batches) > 0

    def test_env_flag_enables_tracing(self, imdb_db, star_query, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "1")
        traced = imdb_db.execute(star_query, options=_options(backend="serial"))
        assert traced.trace is not None
        monkeypatch.setenv("REPRO_TRACE", "0")
        untraced = imdb_db.execute(star_query, options=_options(backend="serial"))
        assert untraced.trace is None

    def test_trace_covers_plan_phase_and_every_op(self, imdb_db, star_query):
        traced = imdb_db.execute(star_query, options=_options(backend="serial", tracing=True))
        phases = [span.name for span in traced.trace.find("phase")]
        assert "plan" in phases
        op_spans = traced.trace.find("op")
        assert len(op_spans) == len(traced.stats.op_stats)


# ---------------------------------------------------------------------------
# EXPLAIN ANALYZE
# ---------------------------------------------------------------------------
class TestExplainAnalyze:
    def test_explain_analyze_executes_and_renders_actuals(self):
        db = _star_db()
        plain = db.sql(STAR_SQL)
        analyzed = db.sql("EXPLAIN ANALYZE " + STAR_SQL)
        assert isinstance(analyzed, ExplainAnalyzeResult)
        assert analyzed.aggregates == plain.aggregates
        assert analyzed.trace is not None
        rendered = analyzed.render()
        assert "rows in" in rendered
        assert "query" in rendered  # the timeline section
        assert any(op.rows_in > 0 for op in analyzed.op_stats)
        assert sum(op.seconds for op in analyzed.op_stats) > 0.0

    def test_plain_explain_and_select_are_unchanged(self):
        db = _star_db()
        explained = db.sql("EXPLAIN " + STAR_SQL)
        assert isinstance(explained, ExplainResult)
        assert not isinstance(explained, ExplainAnalyzeResult)
        selected = db.sql(STAR_SQL)
        assert selected.trace is None

    def test_explain_analyze_every_tpch_query(self, tpch_db):
        stems = sqlfiles.stems_for("tpch")
        assert stems, "expected bundled TPC-H .sql files"
        for stem in stems:
            text = sqlfiles.sql_text(stem)
            analyzed = tpch_db.sql("EXPLAIN ANALYZE " + text)
            assert isinstance(analyzed, ExplainAnalyzeResult), stem
            assert analyzed.trace is not None, stem
            assert analyzed.op_stats, stem
            assert any(op.rows_in > 0 for op in analyzed.op_stats), stem
            assert sum(op.seconds for op in analyzed.op_stats) > 0.0, stem
            rendered = analyzed.render()
            assert "rows in" in rendered, stem


# ---------------------------------------------------------------------------
# Server metrics + query log
# ---------------------------------------------------------------------------
class TestServerObservability:
    def test_stats_exposes_metrics_and_query_log(self):
        db = _star_db()
        server = Server(db, ServerConfig(max_concurrent=2))
        try:
            session = server.session(name="obs")
            first = session.sql(STAR_SQL)
            second = session.sql(STAR_SQL)
            assert first.aggregates == second.aggregates
            session.sql("EXPLAIN " + STAR_SQL)

            stats = server.stats()
            assert stats.metrics['repro_server_queries_total{outcome="ok"}'] == 3.0
            assert stats.metrics["repro_server_query_seconds_count"] == 3.0
            assert stats.metrics["repro_plan_cache_hits"] >= 1.0
            assert len(stats.query_log) == 3
            assert [r.outcome for r in stats.query_log] == ["ok", "ok", "ok"]
            record = stats.query_log[1]  # a SELECT (the last entry is EXPLAIN)
            assert record.session == "obs"
            assert record.sql_hash
            assert record.backend
            assert record.plan_fingerprint
            assert record.duration_seconds >= 0.0
            assert "scan" in record.op_seconds

            rendered = server.render_metrics()
            series = parse_exposition(rendered)
            assert series == server.metrics_snapshot()
        finally:
            server.close()

    def test_rejections_are_counted_and_logged(self):
        db = _star_db()
        server = Server(db, ServerConfig(max_concurrent=1))
        session = server.session(name="late")
        server.close()
        with pytest.raises(AdmissionRejected):
            session.sql(STAR_SQL)
        stats = server.stats()
        assert stats.metrics['repro_server_rejections_total{reason="closed"}'] == 1.0
        assert stats.metrics['repro_server_queries_total{outcome="rejected"}'] == 1.0
        assert stats.query_log[-1].outcome == "rejected"
        assert stats.query_log[-1].error

    def test_query_log_can_be_disabled(self):
        db = _star_db()
        server = Server(db, ServerConfig(query_log_entries=0))
        try:
            session = server.session()
            session.sql(STAR_SQL)
            stats = server.stats()
            assert stats.query_log == []
            assert stats.metrics['repro_server_queries_total{outcome="ok"}'] == 1.0
        finally:
            server.close()

    def test_degradation_metrics_use_bounded_families(self):
        db = _star_db()
        server = Server(db, ServerConfig(max_concurrent=2))
        try:
            session = server.session()
            result = session.sql(
                STAR_SQL,
                options=_options(
                    backend="process",
                    num_workers=2,
                    chunk_size=512,
                    max_task_retries=1,
                    faults="seed:3,rate:1.0,sites:process.task",
                ),
            )
            assert result.stats.inline_fallback_morsels > 0
            stats = server.stats()
            degraded = {
                key: value
                for key, value in stats.metrics.items()
                if key.startswith("repro_degradations_total")
            }
            assert degraded, "expected degradation counters after a chaos run"
            # Rung labels are family-bounded: at most two ':'-separated parts.
            for key in degraded:
                label = key.split('rung="')[1].rstrip('"}')
                assert label.count(":") <= 1
        finally:
            server.close()
