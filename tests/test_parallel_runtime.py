"""Tests for the morsel-parallel runtime and the radix-partitioned hash joins.

Covers the radix-partitioning kernels (partition ids, permutation/offsets,
:class:`PartitionedHashIndex` match/contains equivalence with the monolithic
kernels), the compilation of ``Partition`` / ``PartitionedHashBuild`` /
``PartitionedHashProbe`` ops under an :class:`ExecutionConfig` threshold, the
:class:`ParallelBackend` morsel scheduler (bit-identical results, morsel
counters, pool lifecycle), and the environment-variable config resolution
behind the CI backend matrix.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import Database, ExecutionConfig, ExecutionMode, ExecutionOptions
from repro.errors import ExecutionError
from repro.exec.kernels import (
    HashIndex,
    PartitionedHashIndex,
    match_keys,
    radix_partition,
    radix_partition_ids,
)
from repro.exec.pipeline import ParallelBackend


# ---------------------------------------------------------------------------
# Radix partitioning kernels
# ---------------------------------------------------------------------------
class TestRadixPartition:
    def test_partition_ids_cover_range_and_agree_across_sides(self):
        rng = np.random.default_rng(3)
        keys = rng.integers(0, 2**60, size=10_000, dtype=np.int64)
        pids = radix_partition_ids(keys, bits=5)
        assert pids.dtype == np.uint16
        assert pids.min() >= 0 and pids.max() < 32
        # Equal keys hash to equal partitions regardless of the array they sit in.
        np.testing.assert_array_equal(pids, radix_partition_ids(keys.copy(), bits=5))

    def test_partition_ids_rejects_bad_bits(self):
        keys = np.arange(10, dtype=np.int64)
        with pytest.raises(ExecutionError):
            radix_partition_ids(keys, bits=0)
        with pytest.raises(ExecutionError):
            radix_partition_ids(keys, bits=17)

    def test_partitioning_is_a_permutation_with_consistent_offsets(self):
        rng = np.random.default_rng(4)
        keys = rng.integers(0, 1_000, size=5_000, dtype=np.int64)
        parts = radix_partition(keys, bits=4)
        assert parts.num_rows == keys.shape[0]
        np.testing.assert_array_equal(np.sort(parts.order), np.arange(keys.shape[0]))
        assert int(parts.offsets[-1]) == keys.shape[0]
        pids = radix_partition_ids(keys, bits=4)
        for p in range(parts.num_partitions):
            segment = parts.segment_keys(p)
            assert segment.shape[0] == parts.partition_rows(p)
            # Every row in partition p hashes to p, and maps back to its key.
            assert (radix_partition_ids(segment, bits=4) == p).all()
            np.testing.assert_array_equal(keys[parts.segment_order(p)], segment)
        assert int(np.bincount(pids, minlength=16).sum()) == keys.shape[0]

    def test_partitioned_match_agrees_with_monolithic(self):
        rng = np.random.default_rng(5)
        build = rng.integers(0, 700, size=4_000, dtype=np.int64)
        probe = rng.integers(0, 700, size=6_000, dtype=np.int64)
        mono = match_keys(probe, build)
        part = PartitionedHashIndex(build, bits=4).match(probe)
        # Same multiset of (probe, build) pairs, partition order notwithstanding.
        assert part.num_matches == mono.num_matches
        mono_pairs = np.sort(mono.probe_indices * 1_000_000 + mono.build_indices)
        part_pairs = np.sort(part.probe_indices * 1_000_000 + part.build_indices)
        np.testing.assert_array_equal(mono_pairs, part_pairs)

    def test_partitioned_contains_agrees_with_monolithic(self):
        rng = np.random.default_rng(6)
        build = rng.integers(0, 2**50, size=3_000, dtype=np.int64)
        probe = rng.integers(0, 2**50, size=5_000, dtype=np.int64)
        expected = HashIndex(build).contains(probe)
        got = PartitionedHashIndex(build, bits=3).contains(probe)
        np.testing.assert_array_equal(got, expected)

    def test_empty_sides(self):
        empty = np.zeros(0, dtype=np.int64)
        some = np.array([1, 2, 3], dtype=np.int64)
        index = PartitionedHashIndex(empty, bits=2)
        assert index.match(some).num_matches == 0
        assert not index.contains(some).any()
        full = PartitionedHashIndex(some, bits=2)
        assert full.match(empty).num_matches == 0
        assert full.contains(empty).shape == (0,)

    def test_build_counts_pending_partitions_once(self):
        keys = np.arange(1_000, dtype=np.int64)
        index = PartitionedHashIndex(keys, bits=3)
        first = index.build()
        assert first > 0
        assert index.build() == 0  # already built: nothing pending

    def test_parallel_task_runner_matches_serial(self):
        rng = np.random.default_rng(7)
        build = rng.integers(0, 500, size=8_000, dtype=np.int64)
        probe = rng.integers(0, 500, size=8_000, dtype=np.int64)
        backend = ParallelBackend(num_threads=4)
        try:
            serial = PartitionedHashIndex(build, bits=4).match(probe)
            parallel_index = PartitionedHashIndex(build, bits=4)
            parallel_index.build(run_tasks=backend.map_tasks)
            parallel = parallel_index.match(probe, run_tasks=backend.map_tasks)
        finally:
            backend.close()
        np.testing.assert_array_equal(serial.probe_indices, parallel.probe_indices)
        np.testing.assert_array_equal(serial.build_indices, parallel.build_indices)


# ---------------------------------------------------------------------------
# ParallelBackend morsel scheduler
# ---------------------------------------------------------------------------
class TestParallelBackend:
    def test_probe_mask_is_bit_identical_and_counts_morsels(self):
        rng = np.random.default_rng(8)
        keys = rng.integers(0, 100, size=10_000, dtype=np.int64)
        backend = ParallelBackend(num_threads=4, morsel_size=1_024)
        try:
            mask = backend.probe_mask(keys, lambda k: k % 2 == 0)
        finally:
            backend.close()
        np.testing.assert_array_equal(mask, keys % 2 == 0)
        assert backend.tasks_dispatched == 10  # ceil(10000 / 1024)

    def test_match_is_bit_identical_to_serial(self):
        rng = np.random.default_rng(9)
        build = rng.integers(0, 300, size=5_000, dtype=np.int64)
        probe = rng.integers(0, 300, size=9_000, dtype=np.int64)
        index = HashIndex(build)
        serial = index.match(probe)
        backend = ParallelBackend(num_threads=4, morsel_size=512)
        try:
            parallel = backend.match(probe, HashIndex(build))
        finally:
            backend.close()
        np.testing.assert_array_equal(serial.probe_indices, parallel.probe_indices)
        np.testing.assert_array_equal(serial.build_indices, parallel.build_indices)

    def test_small_inputs_skip_the_pool(self):
        backend = ParallelBackend(num_threads=4, morsel_size=1_000)
        try:
            backend.probe_mask(np.arange(10, dtype=np.int64), lambda k: k > 5)
            assert backend._pool is None  # single morsel: no pool spun up
        finally:
            backend.close()

    def test_invalid_construction(self):
        with pytest.raises(ExecutionError):
            ParallelBackend(num_threads=0)
        with pytest.raises(ExecutionError):
            ParallelBackend(morsel_size=0)

    def test_close_is_idempotent(self):
        backend = ParallelBackend(num_threads=2, morsel_size=4)
        backend.map_tasks([lambda: 1, lambda: 2, lambda: 3])
        backend.close()
        backend.close()


# ---------------------------------------------------------------------------
# Partitioned join compilation + execution through the engine
# ---------------------------------------------------------------------------
class TestPartitionedJoins:
    def _options(self, backend: str) -> ExecutionOptions:
        return ExecutionOptions(
            execution=ExecutionConfig(
                backend=backend,
                num_threads=4,
                partition_threshold=1,  # partition every single-attribute join
                partition_bits=3,
            )
        )

    def test_partition_ops_compiled_above_threshold(self, imdb_db, chain_query):
        result = imdb_db.execute(chain_query, options=self._options("serial"))
        kinds = result.physical_plan.op_kinds()
        assert "partition" in kinds
        assert kinds.count("partitioned_hash_build") == kinds.count("partition")
        assert kinds.count("partitioned_hash_probe") == kinds.count("partition")
        # The Partition op immediately precedes its build, which precedes its probe.
        for i, kind in enumerate(kinds):
            if kind == "partition":
                assert kinds[i + 1] == "partitioned_hash_build"
                assert kinds[i + 2] == "partitioned_hash_probe"

    def test_threshold_disables_partitioning(self, imdb_db, chain_query):
        options = ExecutionOptions(
            execution=ExecutionConfig(partition_threshold=None, partition_bits=3)
        )
        result = imdb_db.execute(chain_query, options=options)
        assert result.physical_plan.count("partition") == 0

    @pytest.mark.parametrize("backend", ["serial", "chunked", "parallel"])
    def test_partitioned_execution_matches_monolithic(
        self, imdb_db, chain_query, all_modes, backend
    ):
        for mode in all_modes:
            monolithic = imdb_db.execute(chain_query, mode=mode)
            partitioned = imdb_db.execute(
                chain_query, mode=mode, options=self._options(backend)
            )
            assert monolithic.aggregates == partitioned.aggregates, (mode, backend)
            assert monolithic.output_rows == partitioned.output_rows, (mode, backend)

    def test_partitioned_ops_record_morsel_counts(self, imdb_db, chain_query):
        result = imdb_db.execute(chain_query, options=self._options("parallel"))
        partition_ops = [o for o in result.op_stats if o.kind == "partitioned_hash_build"]
        assert partition_ops
        assert all(o.morsels > 0 for o in partition_ops)


# ---------------------------------------------------------------------------
# ExecutionConfig resolution (the CI backend matrix hook)
# ---------------------------------------------------------------------------
class TestExecutionConfigResolution:
    def test_defaults_resolve_to_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        assert ExecutionConfig().resolved().backend == "serial"

    def test_env_backend_applies_when_unset(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "parallel")
        monkeypatch.setenv("REPRO_NUM_THREADS", "3")
        resolved = ExecutionConfig().resolved()
        assert resolved.backend == "parallel"
        assert resolved.num_threads == 3

    def test_explicit_backend_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "parallel")
        assert ExecutionConfig(backend="chunked").resolved().backend == "chunked"
        assert ExecutionOptions(backend="serial").resolved_execution().backend == "serial"

    def test_env_matrix_runs_whole_queries(self, imdb_db, star_query, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "parallel")
        monkeypatch.delenv("REPRO_NUM_THREADS", raising=False)
        env_result = imdb_db.execute(star_query, mode=ExecutionMode.RPT)
        assert env_result.execution_config.backend == "parallel"
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        serial_result = imdb_db.execute(star_query, mode=ExecutionMode.RPT)
        assert serial_result.execution_config.backend == "serial"
        assert env_result.aggregates == serial_result.aggregates
