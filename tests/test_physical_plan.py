"""Tests for the PhysicalPlan IR, its compilers, and the pipeline executor.

Covers the mode property flags, mode ↔ PhysicalPlan compilation (every mode
compiles to the expected op sequence), cross-mode result agreement through
the pipeline executor on the synthetic / TPC-H / JOB / TPC-DS / DSB
fixtures, the serial vs chunked vs parallel backends, the searchsorted
semi-join kernel, and the evaluate-base-filters-once guarantee.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import Database, ExecutionMode, ExecutionOptions, JoinCondition, QuerySpec, RelationRef
from repro.exec.kernels import HashIndex, match_keys, semi_join_mask
from repro.exec.pipeline import ChunkedBackend, ParallelBackend, SerialBackend, make_backend
from repro.expr.expressions import Expression, eq
from repro.errors import ExecutionError
from repro.plan.join_plan import JoinPlan
from repro.plan.physical import PhysicalPlan, compile_execution
from repro.workloads import dsb, job, synthetic, tpcds, tpch


# ---------------------------------------------------------------------------
# ExecutionMode property flags
# ---------------------------------------------------------------------------
class TestModeFlags:
    def test_transfer_phase_flags(self):
        assert not ExecutionMode.BASELINE.uses_transfer_phase
        assert not ExecutionMode.BLOOM_JOIN.uses_transfer_phase
        assert ExecutionMode.PT.uses_transfer_phase
        assert ExecutionMode.RPT.uses_transfer_phase
        assert ExecutionMode.YANNAKAKIS.uses_transfer_phase

    def test_bloom_filter_flags(self):
        assert not ExecutionMode.BASELINE.uses_bloom_filters
        assert not ExecutionMode.BLOOM_JOIN.uses_bloom_filters
        assert ExecutionMode.PT.uses_bloom_filters
        assert ExecutionMode.RPT.uses_bloom_filters
        assert not ExecutionMode.YANNAKAKIS.uses_bloom_filters

    def test_exact_semijoin_flags(self):
        assert ExecutionMode.YANNAKAKIS.uses_exact_semijoins
        for mode in ExecutionMode:
            if mode is not ExecutionMode.YANNAKAKIS:
                assert not mode.uses_exact_semijoins

    def test_per_join_bloom_flags(self):
        assert ExecutionMode.BLOOM_JOIN.uses_per_join_bloom
        for mode in ExecutionMode:
            if mode is not ExecutionMode.BLOOM_JOIN:
                assert not mode.uses_per_join_bloom

    def test_labels_are_unique(self):
        labels = {mode.label for mode in ExecutionMode}
        assert len(labels) == len(list(ExecutionMode))


# ---------------------------------------------------------------------------
# Mode -> PhysicalPlan compilation
# ---------------------------------------------------------------------------
def _compile(db: Database, query: QuerySpec, mode: ExecutionMode) -> PhysicalPlan:
    options = ExecutionOptions()
    graph = db.join_graph(query)
    schedule = None
    if mode.uses_transfer_phase:
        _, schedule = db._build_schedule(mode, graph, options)
    plan = db.optimizer_plan(query, options, graph)
    return compile_execution(
        query,
        mode,
        plan,
        graph,
        tables={ref.alias: db.catalog.table(ref.table) for ref in query.relations},
        schedule=schedule,
    )


class TestCompilation:
    @pytest.fixture()
    def compiled(self, imdb_db, star_query):
        return {mode: _compile(imdb_db, star_query, mode) for mode in ExecutionMode}

    def test_every_mode_scans_filters_joins_aggregates(self, compiled, star_query):
        n = len(star_query.relations)
        n_filters = sum(1 for ref in star_query.relations if ref.filter is not None)
        for mode, plan in compiled.items():
            kinds = plan.op_kinds()
            assert kinds[:n] == ("scan",) * n, mode
            assert plan.count("filter_push") == n_filters, mode
            assert plan.count("hash_build") == n - 1, mode
            assert plan.count("hash_probe") == n - 1, mode
            assert kinds[-1] == "aggregate", mode

    def test_baseline_has_no_transfer_or_bloom_ops(self, compiled):
        plan = compiled[ExecutionMode.BASELINE]
        assert plan.count("bloom_build") == 0
        assert plan.count("bloom_probe") == 0
        assert plan.count("semi_join_reduce") == 0

    def test_bloom_join_compiles_per_join_sip_pairs(self, compiled, star_query):
        plan = compiled[ExecutionMode.BLOOM_JOIN]
        n_joins = len(star_query.relations) - 1
        assert plan.count("bloom_build") == n_joins
        assert plan.count("bloom_probe") == n_joins
        assert plan.count("semi_join_reduce") == 0
        # Each SIP pair sits immediately before its hash join.
        kinds = plan.op_kinds()
        for i, kind in enumerate(kinds):
            if kind == "bloom_build":
                assert kinds[i + 1] == "bloom_probe"
                assert kinds[i + 2] == "hash_build"
                assert kinds[i + 3] == "hash_probe"

    def test_rpt_and_pt_compile_transfer_bloom_pairs(self, compiled, imdb_db, star_query):
        for mode in (ExecutionMode.RPT, ExecutionMode.PT):
            plan = compiled[mode]
            options = ExecutionOptions()
            graph = imdb_db.join_graph(star_query)
            _, schedule = imdb_db._build_schedule(mode, graph, options)
            assert plan.count("bloom_build") == len(schedule)
            assert plan.count("bloom_probe") == len(schedule)
            assert plan.count("semi_join_reduce") == 0

    def test_yannakakis_compiles_exact_semijoins(self, compiled, imdb_db, star_query):
        plan = compiled[ExecutionMode.YANNAKAKIS]
        options = ExecutionOptions()
        graph = imdb_db.join_graph(star_query)
        _, schedule = imdb_db._build_schedule(ExecutionMode.YANNAKAKIS, graph, options)
        assert plan.count("semi_join_reduce") == len(schedule)
        assert plan.count("bloom_build") == 0

    def test_describe_renders_every_op(self, compiled):
        plan = compiled[ExecutionMode.RPT]
        text = plan.describe()
        assert "PhysicalPlan" in text
        assert text.count("\n") == len(plan)

    def test_plan_exposed_on_query_result(self, imdb_db, star_query):
        result = imdb_db.execute(star_query, mode=ExecutionMode.RPT)
        assert result.physical_plan is not None
        assert result.physical_plan.mode == "rpt"
        assert result.physical_plan.op_kinds()[-1] == "aggregate"
        # Per-op stats: one entry per compiled op, timed, with the phases
        # accounted consistently.
        assert len(result.op_stats) == len(result.physical_plan)
        assert all(op.seconds >= 0.0 for op in result.op_stats)
        assert result.stats.op_seconds_by_kind()
        assert "hash_probe" in result.stats.op_trace()


# ---------------------------------------------------------------------------
# All five modes agree through the pipeline executor
# ---------------------------------------------------------------------------
class TestModeAgreement:
    def test_synthetic_fixture(self):
        instance = synthetic.figure2_instance(base_size=40)
        counts = {
            mode: instance.database.execute(instance.query, mode=mode).aggregates
            for mode in ExecutionMode
        }
        assert len({tuple(sorted(c.items())) for c in counts.values()}) == 1, counts

    def test_tpch_fixture(self, tpch_db):
        query = tpch.query(3)
        plan = tpch_db.optimizer_plan(query)
        results = {
            mode: tpch_db.execute(query, mode=mode, plan=plan).aggregates
            for mode in ExecutionMode
        }
        assert len({tuple(sorted(r.items())) for r in results.values()}) == 1, results

    def test_job_fixture(self, job_db):
        query = job.query(1)
        plan = job_db.optimizer_plan(query)
        results = {
            mode: job_db.execute(query, mode=mode, plan=plan).aggregates
            for mode in ExecutionMode
        }
        assert len({tuple(sorted(r.items())) for r in results.values()}) == 1, results

    @pytest.mark.parametrize("number", [3, 27])
    def test_tpcds_fixture(self, tpcds_db, number):
        query = tpcds.query(number)
        plan = tpcds_db.optimizer_plan(query)
        results = {
            mode: tpcds_db.execute(query, mode=mode, plan=plan).aggregates
            for mode in ExecutionMode
        }
        assert len({tuple(sorted(r.items())) for r in results.values()}) == 1, results

    @pytest.mark.parametrize("number", [7, 96])
    def test_dsb_fixture(self, dsb_db, number):
        query = dsb.query(number)
        plan = dsb_db.optimizer_plan(query)
        results = {
            mode: dsb_db.execute(query, mode=mode, plan=plan).aggregates
            for mode in ExecutionMode
        }
        assert len({tuple(sorted(r.items())) for r in results.values()}) == 1, results


# ---------------------------------------------------------------------------
# Backends
# ---------------------------------------------------------------------------
class TestBackends:
    def test_make_backend(self):
        assert isinstance(make_backend("serial"), SerialBackend)
        assert isinstance(make_backend("chunked"), ChunkedBackend)
        assert isinstance(make_backend("parallel"), ParallelBackend)
        with pytest.raises(ExecutionError):
            make_backend("gpu")

    def test_chunked_backend_matches_serial(self, imdb_db, chain_query, all_modes):
        for mode in all_modes:
            serial = imdb_db.execute(chain_query, mode=mode)
            chunked = imdb_db.execute(
                chain_query,
                mode=mode,
                options=ExecutionOptions(backend="chunked", chunk_size=256),
            )
            assert serial.aggregates == chunked.aggregates, mode
            assert serial.output_rows == chunked.output_rows, mode

    def test_parallel_backend_matches_serial(self, imdb_db, chain_query, all_modes):
        for mode in all_modes:
            serial = imdb_db.execute(chain_query, mode=mode)
            parallel = imdb_db.execute(
                chain_query,
                mode=mode,
                options=ExecutionOptions(backend="parallel", chunk_size=256),
            )
            assert serial.aggregates == parallel.aggregates, mode
            assert serial.output_rows == parallel.output_rows, mode

    def test_chunked_backend_accrues_simulated_cost(self, imdb_db, star_query):
        result = imdb_db.execute(
            star_query,
            mode=ExecutionMode.RPT,
            options=ExecutionOptions(backend="chunked", chunk_size=128),
        )
        assert result.stats.simulated_parallel_cost > 0.0
        serial = imdb_db.execute(
            star_query, mode=ExecutionMode.RPT, options=ExecutionOptions(backend="serial")
        )
        assert serial.stats.simulated_parallel_cost == 0.0


# ---------------------------------------------------------------------------
# Kernels: searchsorted membership + HashIndex reuse
# ---------------------------------------------------------------------------
class TestSemiJoinKernel:
    def test_matches_isin_reference(self):
        rng = np.random.default_rng(7)
        keys = rng.integers(0, 500, size=4_000, dtype=np.int64)
        filter_keys = rng.integers(0, 500, size=700, dtype=np.int64)
        expected = np.isin(keys, filter_keys)
        np.testing.assert_array_equal(semi_join_mask(keys, filter_keys), expected)

    def test_empty_edges(self):
        empty = np.zeros(0, dtype=np.int64)
        some = np.array([1, 2, 3], dtype=np.int64)
        assert semi_join_mask(empty, some).shape == (0,)
        assert not semi_join_mask(some, empty).any()

    def test_hash_index_reuse(self):
        rng = np.random.default_rng(8)
        build = rng.integers(0, 100, size=1_000, dtype=np.int64)
        probe = rng.integers(0, 100, size=2_000, dtype=np.int64)
        index = HashIndex(build)
        np.testing.assert_array_equal(index.contains(probe), np.isin(probe, build))
        direct = match_keys(probe, build)
        via_index = match_keys(probe, index)
        np.testing.assert_array_equal(direct.probe_indices, via_index.probe_indices)
        np.testing.assert_array_equal(direct.build_indices, via_index.build_indices)

    def test_float_probe_keys_against_integer_filter(self):
        # The bitmap fast path must not engage for non-integer probes.
        out = semi_join_mask(np.array([1.0, 2.5, 3.0]), np.array([1, 2, 3]))
        assert out.tolist() == [True, False, True]

    def test_unbounded_domain_reuse_amortizes(self):
        rng = np.random.default_rng(9)
        build = rng.integers(0, 2**60, size=10_000)
        probe = rng.integers(0, 2**60, size=10_000)
        index = HashIndex(build)
        first = index.contains(probe)   # one-shot: np.isin fallback
        second = index.contains(probe)  # reuse: sorted index built and cached
        assert index._sorted_keys is not None
        np.testing.assert_array_equal(first, second)
        np.testing.assert_array_equal(first, np.isin(probe, build))

    def test_match_keys_duplicates(self):
        probe = np.array([5, 5, 9], dtype=np.int64)
        build = np.array([5, 5, 7], dtype=np.int64)
        matches = match_keys(probe, build)
        assert matches.num_matches == 4  # each probe 5 pairs with both build 5s

    def test_microbench_runs_small(self):
        from repro.bench.microbench import (
            format_semijoin_kernel_microbench,
            run_semijoin_kernel_microbench,
        )

        measurements = run_semijoin_kernel_microbench(
            probe_rows=10_000, filter_sizes=(100, 1_000), repeats=1
        )
        assert len(measurements) == 2
        table = format_semijoin_kernel_microbench(measurements)
        assert "np.isin" in table


# ---------------------------------------------------------------------------
# Base filters are evaluated exactly once per execution
# ---------------------------------------------------------------------------
class _CountingFilter(Expression):
    """Wraps a predicate and counts how many times it is evaluated."""

    def __init__(self, inner: Expression) -> None:
        self.inner = inner
        self.calls = 0

    def evaluate(self, table):
        self.calls += 1
        return self.inner.evaluate(table)

    def referenced_columns(self):
        return self.inner.referenced_columns()


class TestSingleFilterEvaluation:
    def _db(self) -> Database:
        db = Database()
        db.register_dataframe(
            "dim", {"id": [1, 2, 3, 4], "color": ["red", "blue", "red", "green"]},
            primary_key=["id"],
        )
        db.register_dataframe("fact", {"dim_id": [1, 1, 2, 3, 4, 4], "v": [1, 2, 3, 4, 5, 6]})
        return db

    def _query(self, counting: _CountingFilter) -> QuerySpec:
        return QuerySpec(
            name="count_filter",
            relations=(
                RelationRef("d", "dim", counting),
                RelationRef("f", "fact"),
            ),
            joins=(JoinCondition("f", "dim_id", "d", "id"),),
        )

    @pytest.mark.parametrize("mode", list(ExecutionMode))
    def test_filter_evaluated_once_per_execute(self, mode):
        db = self._db()
        counting = _CountingFilter(eq("color", "red"))
        query = self._query(counting)
        db.execute(query, mode=mode)
        assert counting.calls == 1, f"{mode}: filter evaluated {counting.calls} times"

    def test_join_graph_reuses_masks(self):
        db = self._db()
        counting = _CountingFilter(eq("color", "red"))
        query = self._query(counting)
        masks = db.filter_masks(query)
        assert counting.calls == 1
        db.join_graph(query, masks=masks)
        assert counting.calls == 1  # sizes derived from the precomputed mask
