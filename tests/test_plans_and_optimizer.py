"""Unit tests for join plans, random plan generation, and the join-order optimizer."""

from __future__ import annotations

import random

import pytest

from repro.core import JoinGraph
from repro.errors import OptimizerError, PlanError
from repro.optimizer import (
    CardinalityEstimator,
    EstimationErrorModel,
    JoinOrderOptimizer,
    JoinOrderOptions,
    generate_bushy_plans,
    generate_left_deep_plans,
    iter_all_left_deep_orders,
    paper_sample_size,
    random_bushy_plan,
    random_left_deep_order,
)
from repro.plan.join_plan import (
    JoinNode,
    JoinPlan,
    LeafNode,
    plan_avoids_cartesian_products,
    validate_plan_for_query,
)
from repro.query import JoinCondition, QuerySpec, RelationRef


def _chain_graph(n: int, sizes=None) -> JoinGraph:
    relations = tuple(RelationRef(f"r{i}", f"t{i}") for i in range(n))
    joins = tuple(JoinCondition(f"r{i}", "k", f"r{i+1}", "k2") for i in range(n - 1))
    query = QuerySpec(name=f"chain{n}", relations=relations, joins=joins)
    return JoinGraph.from_query(query, sizes or {f"r{i}": (i + 1) * 100 for i in range(n)})


class TestJoinPlan:
    def test_from_left_deep_roundtrip(self):
        plan = JoinPlan.from_left_deep(("a", "b", "c", "d"))
        assert plan.is_left_deep()
        assert plan.left_deep_order() == ("a", "b", "c", "d")
        assert plan.num_joins == 3
        assert plan.aliases == frozenset({"a", "b", "c", "d"})

    def test_single_relation_plan(self):
        plan = JoinPlan.single("a")
        assert plan.num_joins == 0
        assert plan.is_left_deep()
        assert plan.left_deep_order() == ("a",)

    def test_bushy_plan_not_left_deep(self):
        bushy = JoinPlan(root=JoinNode(
            left=JoinNode(LeafNode("a"), LeafNode("b")),
            right=JoinNode(LeafNode("c"), LeafNode("d")),
        ))
        assert not bushy.is_left_deep()
        with pytest.raises(PlanError):
            bushy.left_deep_order()

    def test_empty_order_rejected(self):
        with pytest.raises(PlanError):
            JoinPlan.from_left_deep(())

    def test_validate_plan_for_query(self):
        plan = JoinPlan.from_left_deep(("a", "b"))
        validate_plan_for_query(plan, ["a", "b"])
        with pytest.raises(PlanError):
            validate_plan_for_query(plan, ["a", "b", "c"])
        with pytest.raises(PlanError):
            validate_plan_for_query(plan, ["a"])
        duplicate = JoinPlan(root=JoinNode(LeafNode("a"), LeafNode("a")))
        with pytest.raises(PlanError):
            validate_plan_for_query(duplicate, ["a", "a"])

    def test_cartesian_detection(self):
        neighbors = {"a": frozenset({"b"}), "b": frozenset({"a", "c"}), "c": frozenset({"b"})}
        good = JoinPlan.from_left_deep(("a", "b", "c"))
        bad = JoinPlan.from_left_deep(("a", "c", "b"))
        assert plan_avoids_cartesian_products(good, neighbors)
        assert not plan_avoids_cartesian_products(bad, neighbors)

    def test_describe(self):
        assert "⋈" in JoinPlan.from_left_deep(("a", "b")).describe()


class TestRandomPlans:
    def test_paper_sample_size_rule(self):
        assert paper_sample_size(3) == 20
        assert paper_sample_size(17) == 1000
        assert paper_sample_size(10) == 70 * 10 - 190
        assert paper_sample_size(2) == 20

    def test_left_deep_orders_avoid_cartesian_products(self):
        graph = _chain_graph(6)
        rng = random.Random(0)
        for _ in range(25):
            order = random_left_deep_order(graph, rng)
            joined = {order[0]}
            for alias in order[1:]:
                assert graph.neighbors(alias) & joined
                joined.add(alias)

    def test_bushy_plans_valid(self):
        graph = _chain_graph(6)
        rng = random.Random(1)
        neighbors = {a: graph.neighbors(a) for a in graph.aliases}
        for _ in range(25):
            plan = random_bushy_plan(graph, rng)
            validate_plan_for_query(plan, graph.aliases)
            assert plan_avoids_cartesian_products(plan, neighbors)

    def test_generators_deterministic_per_seed(self):
        graph = _chain_graph(5)
        a = [p.describe() for p in generate_left_deep_plans(graph, 10, seed=3)]
        b = [p.describe() for p in generate_left_deep_plans(graph, 10, seed=3)]
        assert a == b
        c = [p.describe() for p in generate_bushy_plans(graph, 10, seed=3)]
        d = [p.describe() for p in generate_bushy_plans(graph, 10, seed=3)]
        assert c == d

    def test_unique_generation(self):
        graph = _chain_graph(4)
        plans = generate_left_deep_plans(graph, 8, seed=0, unique=True)
        orders = [p.left_deep_order() for p in plans]
        assert len(orders) == len(set(orders))

    def test_iter_all_left_deep_orders_chain3(self):
        graph = _chain_graph(3)
        orders = list(iter_all_left_deep_orders(graph))
        # Chain r0-r1-r2: valid orders avoid starting pairs (r0, r2).
        assert ("r0", "r1", "r2") in orders
        assert ("r0", "r2", "r1") not in orders
        assert len(orders) == len(set(orders)) == 4

    def test_single_relation(self):
        graph = _chain_graph(1)
        assert random_left_deep_order(graph, random.Random(0)) == ("r0",)
        assert random_bushy_plan(graph, random.Random(0)).aliases == frozenset({"r0"})


class TestCardinalityEstimator:
    def _setup(self, error_factor=1.0):
        from repro.engine.database import Database
        from repro.workloads import tpch

        db = Database()
        tpch.load(db, scale=0.05, seed=0)
        query = tpch.query(3)
        graph = db.join_graph(query)
        estimator = CardinalityEstimator(
            db.catalog, query, graph, EstimationErrorModel(error_factor=error_factor, seed=1)
        )
        return db, query, graph, estimator

    def test_base_cardinalities_positive_and_filtered(self):
        db, query, graph, estimator = self._setup()
        for ref in query.relations:
            estimate = estimator.base_cardinality(ref.alias)
            assert estimate >= 1.0
            assert estimate <= db.catalog.table(ref.table).num_rows + 1

    def test_unknown_alias_raises(self):
        _, _, _, estimator = self._setup()
        with pytest.raises(OptimizerError):
            estimator.base_cardinality("zzz")

    def test_join_cardinality_reasonable(self):
        _, _, _, estimator = self._setup()
        joined = estimator.join_cardinality(
            frozenset({"o"}), frozenset({"l"}),
            estimator.base_cardinality("o"), estimator.base_cardinality("l"),
        )
        assert joined >= 1.0

    def test_error_injection_changes_estimates(self):
        _, _, _, exact = self._setup(error_factor=1.0)
        _, _, _, erroneous = self._setup(error_factor=100.0)
        diffs = [
            abs(exact.base_cardinality(a) - erroneous.base_cardinality(a))
            for a in ("c", "o", "l")
        ]
        assert any(d > 0 for d in diffs)

    def test_prefix_cardinalities(self):
        _, query, _, estimator = self._setup()
        cards = estimator.estimate_plan_cardinalities(list(query.aliases))
        assert len(cards) == len(query.aliases)
        assert all(c >= 1.0 for c in cards)


class TestJoinOrderOptimizer:
    def test_dp_plan_valid_and_cartesian_free(self):
        graph = _chain_graph(5)
        from repro.storage.catalog import Catalog
        from repro.storage.table import Table

        catalog = Catalog()
        for i in range(5):
            catalog.register(Table.from_dict(f"t{i}", {"k": list(range((i + 1) * 10)), "k2": list(range((i + 1) * 10))}))
        estimator = CardinalityEstimator(catalog, graph.query, graph)
        plan = JoinOrderOptimizer(graph, estimator).optimize()
        validate_plan_for_query(plan, graph.aliases)
        neighbors = {a: graph.neighbors(a) for a in graph.aliases}
        assert plan_avoids_cartesian_products(plan, neighbors)

    def test_left_deep_only_option(self):
        graph = _chain_graph(5)
        from repro.storage.catalog import Catalog
        from repro.storage.table import Table

        catalog = Catalog()
        for i in range(5):
            catalog.register(Table.from_dict(f"t{i}", {"k": list(range((i + 1) * 10)), "k2": list(range((i + 1) * 10))}))
        estimator = CardinalityEstimator(catalog, graph.query, graph)
        plan = JoinOrderOptimizer(
            graph, estimator, JoinOrderOptions(left_deep_only=True)
        ).optimize()
        assert plan.is_left_deep()

    def test_greedy_used_beyond_dp_limit(self):
        graph = _chain_graph(12)
        from repro.storage.catalog import Catalog
        from repro.storage.table import Table

        catalog = Catalog()
        for i in range(12):
            catalog.register(Table.from_dict(f"t{i}", {"k": list(range((i + 1) * 5)), "k2": list(range((i + 1) * 5))}))
        estimator = CardinalityEstimator(catalog, graph.query, graph)
        plan = JoinOrderOptimizer(
            graph, estimator, JoinOrderOptions(dp_relation_limit=6)
        ).optimize()
        validate_plan_for_query(plan, graph.aliases)
        neighbors = {a: graph.neighbors(a) for a in graph.aliases}
        assert plan_avoids_cartesian_products(plan, neighbors)

    def test_single_relation_plan(self):
        graph = _chain_graph(1)
        from repro.storage.catalog import Catalog
        from repro.storage.table import Table

        catalog = Catalog()
        catalog.register(Table.from_dict("t0", {"k": [1], "k2": [1]}))
        estimator = CardinalityEstimator(catalog, graph.query, graph)
        plan = JoinOrderOptimizer(graph, estimator).optimize()
        assert plan.aliases == frozenset({"r0"})
