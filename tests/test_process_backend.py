"""Process backend: bit-identity, shared-memory lifecycle, crash propagation.

The contract under test: :class:`~repro.exec.process.ProcessBackend` is
bit-identical to the serial backend on every execution mode (morsel results
gather in submit order), base columns travel through the database's
:class:`~repro.storage.shm.SharedColumnArena` (invalidated on table
replace), transient segments never outlive a call — including when a worker
raises — and the worker exception propagates to the caller.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import Database, ExecutionMode, ExecutionOptions
from repro.engine.modes import ExecutionConfig
from repro.errors import ExecutionError
from repro.exec.kernels import HashIndex
from repro.exec.pipeline import make_backend
from repro.exec.process import (
    DEFAULT_PROCESS_MORSEL_SIZE,
    ProcessBackend,
    ShmGather,
    probe_input_rows,
)
from repro.storage import shm
from repro.workloads import sqlfiles


def process_options(**execution_kwargs) -> ExecutionOptions:
    """Process-backend options with a tiny morsel so fan-out always happens."""
    execution_kwargs.setdefault("backend", "process")
    execution_kwargs.setdefault("num_workers", 2)
    execution_kwargs.setdefault("chunk_size", 512)
    return ExecutionOptions(execution=ExecutionConfig(**execution_kwargs))


class _Boom:
    """A picklable probe spec whose every call fails (worker-crash injection)."""

    def __call__(self, keys):
        raise ValueError("injected worker failure")


class _EvenMask:
    """A picklable probe spec: mask of even keys (deterministic, stateless)."""

    def __call__(self, keys):
        return np.asarray(keys) % 2 == 0


# ---------------------------------------------------------------------------
# Bit-identity against the serial backend
# ---------------------------------------------------------------------------
class TestBitIdentity:
    def test_star_and_chain_all_modes(self, imdb_db, star_query, chain_query, all_modes):
        for query in (star_query, chain_query):
            plan = imdb_db.optimizer_plan(query)
            for mode in all_modes:
                serial = imdb_db.execute(
                    query, mode=mode, plan=plan, options=ExecutionOptions(backend="serial")
                )
                proc = imdb_db.execute(
                    query, mode=mode, plan=plan, options=process_options()
                )
                assert proc.aggregates == serial.aggregates, (query.name, mode)
                assert proc.output_rows == serial.output_rows, (query.name, mode)

    @pytest.mark.parametrize("backend", ["serial", "chunked", "parallel", "process"])
    def test_tpch_backend_matrix(self, tpch_db, backend):
        from repro.workloads import tpch

        query = tpch.all_queries()["q5"]
        plan = tpch_db.optimizer_plan(query)
        baseline = tpch_db.execute(
            query, mode=ExecutionMode.RPT, plan=plan, options=ExecutionOptions(backend="serial")
        )
        options = (
            process_options()
            if backend == "process"
            else ExecutionOptions(
                execution=ExecutionConfig(backend=backend, chunk_size=512, num_threads=2)
            )
        )
        result = tpch_db.execute(query, mode=ExecutionMode.RPT, plan=plan, options=options)
        assert result.aggregates == baseline.aggregates
        assert result.output_rows == baseline.output_rows

    def test_job_query_process_vs_serial(self, job_db):
        from repro.workloads import job

        name, query = next(iter(job.all_queries().items()))
        plan = job_db.optimizer_plan(query)
        serial = job_db.execute(
            query, mode=ExecutionMode.RPT, plan=plan, options=ExecutionOptions(backend="serial")
        )
        proc = job_db.execute(query, mode=ExecutionMode.RPT, plan=plan, options=process_options())
        assert proc.aggregates == serial.aggregates, name

    def test_fusion_on_and_off_identical(self, tpch_db):
        from repro.workloads import tpch

        query = tpch.all_queries()["q19"]  # conjunctive lineitem filter: fusible
        plan = tpch_db.optimizer_plan(query)
        off = tpch_db.execute(
            query, mode=ExecutionMode.RPT, plan=plan, options=process_options(fuse_filters=False)
        )
        on = tpch_db.execute(
            query, mode=ExecutionMode.RPT, plan=plan, options=process_options(fuse_filters=True)
        )
        assert on.aggregates == off.aggregates
        assert on.stats.fused_exprs > 0
        assert off.stats.fused_exprs == 0

    def test_sql_workloads_process_vs_serial(self):
        """All 56 checked-in .sql files: process aggregates == serial aggregates."""
        cache = {}
        serial = sqlfiles.run_all(
            scale=0.05,
            seed=3,
            options=ExecutionOptions(backend="serial"),
            verify_against_handbuilt=False,
            database_cache=cache,
        )
        proc = sqlfiles.run_all(
            scale=0.05,
            seed=3,
            options=process_options(),
            verify_against_handbuilt=False,
            database_cache=cache,
        )
        assert len(serial) == len(proc) == len(sqlfiles.available())
        for s, p in zip(serial, proc):
            assert s["stem"] == p["stem"]
            assert s["aggregates"] == p["aggregates"], s["stem"]
        for db in cache.values():
            db.close()


# ---------------------------------------------------------------------------
# Backend unit behavior (fan-out, inline fallbacks, match offsets)
# ---------------------------------------------------------------------------
class TestBackendUnits:
    def test_probe_mask_fans_out_bit_identical(self):
        rng = np.random.default_rng(7)
        keys = rng.integers(0, 1 << 30, size=10_000, dtype=np.int64)
        backend = ProcessBackend(num_workers=2, morsel_size=1_000)
        mask = backend.probe_mask(keys, _EvenMask())
        np.testing.assert_array_equal(mask, keys % 2 == 0)
        assert backend.tasks_dispatched == 10
        assert backend.shm_bytes_mapped > 0

    def test_match_fans_out_bit_identical(self):
        rng = np.random.default_rng(9)
        build = rng.integers(0, 5_000, size=3_000, dtype=np.int64)
        probe = rng.integers(0, 5_000, size=8_000, dtype=np.int64)
        index = HashIndex(build)
        expected = HashIndex(build).match(probe)
        backend = ProcessBackend(num_workers=2, morsel_size=1_000)
        got = backend.match(probe, index)
        np.testing.assert_array_equal(got.probe_indices, expected.probe_indices)
        np.testing.assert_array_equal(got.build_indices, expected.build_indices)

    def test_small_input_runs_inline(self):
        keys = np.arange(100, dtype=np.int64)
        backend = ProcessBackend(num_workers=2)  # default morsel >> 100 rows
        before = shm.live_segment_count()
        mask = backend.probe_mask(keys, _EvenMask())
        np.testing.assert_array_equal(mask, keys % 2 == 0)
        assert backend.tasks_dispatched == 1  # inline, no fan-out
        assert shm.live_segment_count() == before

    def test_unpicklable_spec_falls_back_inline(self):
        keys = np.arange(5_000, dtype=np.int64)
        backend = ProcessBackend(num_workers=2, morsel_size=1_000)
        captured = []  # closure state makes the callable unpicklable
        mask = backend.probe_mask(keys, lambda k: captured.append(1) or (k % 2 == 0))
        np.testing.assert_array_equal(mask, keys % 2 == 0)
        assert captured, "fallback must have run inline in this process"

    def test_shm_gather_lazy_probe_input(self):
        column = np.arange(100, dtype=np.int64) * 10
        selection = np.array([3, 1, 4, 1, 5], dtype=np.int64)
        gather = ShmGather(
            shm.ShmArrayRef(name="unused", dtype="<i8", shape=(100,)), selection, column
        )
        assert gather.rows == 5
        assert probe_input_rows(gather) == 5
        np.testing.assert_array_equal(gather.materialize(), column[selection])

    def test_invalid_constructor_args(self):
        with pytest.raises(ExecutionError):
            ProcessBackend(num_workers=0)
        with pytest.raises(ExecutionError):
            ProcessBackend(morsel_size=0)


# ---------------------------------------------------------------------------
# Shared-memory lifecycle
# ---------------------------------------------------------------------------
def _star_db(fact_rows: int = 4_000, dim_rows: int = 2_000, seed: int = 21):
    from repro.expr import lt
    from repro.query import JoinCondition, QuerySpec, RelationRef

    rng = np.random.default_rng(seed)
    db = Database()
    db.register_dataframe(
        "dim",
        {
            "id": np.arange(dim_rows, dtype=np.int64),
            "attr": rng.integers(0, 100, size=dim_rows, dtype=np.int64),
        },
        primary_key=["id"],
    )
    db.register_dataframe(
        "fact",
        {
            "v": np.arange(fact_rows, dtype=np.int64),
            "d_id": rng.integers(0, dim_rows, size=fact_rows, dtype=np.int64),
        },
    )
    query = QuerySpec(
        name="shm_star",
        relations=(RelationRef("f", "fact"), RelationRef("d", "dim", lt("attr", 50))),
        joins=(JoinCondition("f", "d_id", "d", "id"),),
    )
    return db, query


class TestShmLifecycle:
    def test_arena_publishes_and_close_unlinks(self):
        live_before = shm.live_segment_count()
        db, query = _star_db()
        baseline = db.execute(query, mode=ExecutionMode.RPT, options=ExecutionOptions(backend="serial"))
        # hash_cache off routes transfer probes through the arena gather path.
        result = db.execute(
            query, mode=ExecutionMode.RPT, options=process_options(hash_cache=False)
        )
        assert result.aggregates == baseline.aggregates
        assert result.stats.shm_bytes_mapped > 0
        assert "[shm" in result.stats.op_trace()
        arena = db.shm_arena
        assert arena is not None and arena.num_segments > 0
        assert arena.total_bytes > 0
        published = arena.num_segments
        db.close()
        assert arena.num_segments == 0
        assert shm.live_segment_count() == live_before, f"{published} arena segments leaked"

    def test_table_replace_invalidates_arena_segments(self):
        live_before = shm.live_segment_count()
        db, query = _star_db()
        db.execute(query, mode=ExecutionMode.RPT, options=process_options(hash_cache=False))
        arena = db.shm_arena
        published = {key[0] for key in arena.published_keys()}
        assert published, "gather path must have published at least one column"
        table_name = next(iter(published))
        before = arena.num_segments

        # Re-register the table under the same name: stale segments must go.
        rng = np.random.default_rng(99)
        rows = db.catalog.table(table_name).num_rows
        columns = {
            name: rng.integers(0, 100, size=rows, dtype=np.int64)
            for name in db.catalog.table(table_name).column_names
        }
        db.register_dataframe(table_name, columns, replace=True)
        assert all(key[0] != table_name for key in arena.published_keys())
        assert arena.num_segments < before
        db.close()
        assert shm.live_segment_count() == live_before

    def test_worker_crash_propagates_and_leaks_nothing(self):
        keys = np.arange(10_000, dtype=np.int64)
        backend = ProcessBackend(num_workers=2, morsel_size=1_000)
        before = shm.live_segment_count()
        with pytest.raises(ValueError, match="injected worker failure"):
            backend.probe_mask(keys, _Boom())
        # Transient spec/input segments are unlinked in the fan-out's finally
        # block even though a worker raised.
        assert shm.live_segment_count() == before

    def test_create_and_unlink_roundtrip(self):
        array = np.arange(1_000, dtype=np.int64)
        before = shm.live_segment_count()
        segment, ref = shm.share_array(array)
        assert shm.live_segment_count() == before + 1
        np.testing.assert_array_equal(shm.attach_array(ref), array)
        assert ref.nbytes == array.nbytes
        shm.unlink_segment(segment)
        shm.unlink_segment(segment)  # idempotent
        assert shm.live_segment_count() == before


# ---------------------------------------------------------------------------
# Configuration and construction
# ---------------------------------------------------------------------------
class TestConfiguration:
    def test_make_backend_process(self):
        backend = make_backend("process", chunk_size=2_048, num_workers=3)
        assert isinstance(backend, ProcessBackend)
        assert backend.num_workers == 3
        assert backend.morsel_size == 2_048
        default = make_backend("process")
        assert default.morsel_size == DEFAULT_PROCESS_MORSEL_SIZE

    def test_make_backend_unknown_name_mentions_process(self):
        with pytest.raises(ExecutionError, match="process"):
            make_backend("quantum")

    def test_env_resolution(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "process")
        monkeypatch.setenv("REPRO_NUM_WORKERS", "3")
        resolved = ExecutionConfig().resolved()
        assert resolved.backend == "process"
        assert resolved.num_workers == 3

    def test_explicit_config_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_NUM_WORKERS", "7")
        resolved = ExecutionConfig(num_workers=2).resolved()
        assert resolved.num_workers == 2
