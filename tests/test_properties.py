"""Property-based tests of the paper's core invariants over randomized queries.

Hypothesis generates random acyclic (tree-shaped) join queries with random
data; for each instance the tests check the properties §2.2/§3 prove:

* every execution mode produces the same result;
* the result is independent of the join order;
* after an exact (Yannakakis) reduction over the LargestRoot tree, every
  surviving tuple participates in the output (full reduction), and every
  safe intermediate is bounded by the output size;
* the Bloom-filter reduction keeps a superset of the exact reduction.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Database, ExecutionMode, JoinCondition, QuerySpec, RelationRef
from repro.core import is_alpha_acyclic, is_join_tree, largest_root
from repro.optimizer import generate_left_deep_plans
from repro.plan.join_plan import JoinPlan


@st.composite
def tree_query_instances(draw):
    """A random tree-shaped natural-join query plus random table data.

    Relation i > 0 joins a random earlier relation j on attribute ``a{j}``;
    each relation also has its own attribute ``a{i}`` so later relations can
    attach to it.  The result is always α-acyclic.
    """
    num_relations = draw(st.integers(min_value=2, max_value=5))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    domain = draw(st.integers(min_value=2, max_value=12))
    rng = np.random.default_rng(seed)

    parents = {i: draw(st.integers(min_value=0, max_value=i - 1)) for i in range(1, num_relations)}
    sizes = [int(rng.integers(5, 60)) for _ in range(num_relations)]

    db = Database()
    for i in range(num_relations):
        columns = {f"a{i}": rng.integers(0, domain, sizes[i])}
        if i in parents.values():
            pass  # own attribute already present
        parent = parents.get(i)
        if parent is not None:
            columns[f"a{parent}"] = rng.integers(0, domain, sizes[i])
        db.register_dataframe(f"table_{i}", columns)

    relations = tuple(RelationRef(f"r{i}", f"table_{i}") for i in range(num_relations))
    joins = tuple(
        JoinCondition(f"r{i}", f"a{parents[i]}", f"r{parents[i]}", f"a{parents[i]}")
        for i in range(1, num_relations)
    )
    query = QuerySpec(name=f"random_tree_{seed}", relations=relations, joins=joins)
    return db, query


@given(tree_query_instances())
@settings(max_examples=25, deadline=None)
def test_all_modes_agree_on_random_acyclic_queries(instance):
    db, query = instance
    counts = {
        mode: db.execute(query, mode=mode).aggregates["count_star"] for mode in ExecutionMode
    }
    assert len(set(counts.values())) == 1, counts


@given(tree_query_instances(), st.integers(min_value=0, max_value=100))
@settings(max_examples=20, deadline=None)
def test_result_independent_of_join_order(instance, seed):
    db, query = instance
    graph = db.join_graph(query)
    plans = generate_left_deep_plans(graph, 4, seed=seed)
    counts = set()
    for plan in plans:
        for mode in (ExecutionMode.BASELINE, ExecutionMode.RPT):
            counts.add(db.execute(query, mode=mode, plan=plan).aggregates["count_star"])
    assert len(counts) == 1


@given(tree_query_instances())
@settings(max_examples=25, deadline=None)
def test_largest_root_produces_join_tree_on_random_acyclic_queries(instance):
    db, query = instance
    graph = db.join_graph(query)
    assert is_alpha_acyclic(graph)
    tree = largest_root(graph)
    assert is_join_tree(tree)
    assert tree.root == graph.largest_relation()


@given(tree_query_instances())
@settings(max_examples=20, deadline=None)
def test_exact_reduction_is_full_and_bloom_is_superset(instance):
    """Full reduction: with the exact transfer phase, if the output is empty every
    relation is reduced to empty; otherwise every reduced relation is non-empty.
    Bloom reduction never drops more tuples than the exact one."""
    db, query = instance
    exact = db.execute(query, mode=ExecutionMode.YANNAKAKIS)
    bloom = db.execute(query, mode=ExecutionMode.RPT)
    output = exact.stats.output_rows
    for alias in query.aliases:
        exact_rows = exact.stats.reduced_rows[alias]
        bloom_rows = bloom.stats.reduced_rows[alias]
        assert bloom_rows >= exact_rows
        if output == 0:
            assert exact_rows == 0
        else:
            assert exact_rows > 0


@given(tree_query_instances())
@settings(max_examples=20, deadline=None)
def test_yannakakis_intermediates_bounded_by_output(instance):
    """On the exactly-reduced instance, every intermediate of a connected
    (Cartesian-free) left-deep order over a weight-1 tree query is at most |OUT|."""
    db, query = instance
    graph = db.join_graph(query)
    plans = generate_left_deep_plans(graph, 3, seed=7)
    for plan in plans:
        result = db.execute(query, mode=ExecutionMode.YANNAKAKIS, plan=plan)
        out = result.stats.output_rows
        for step in result.stats.join_steps[:-1]:
            assert step.output_rows <= out


@given(tree_query_instances())
@settings(max_examples=15, deadline=None)
def test_pruning_does_not_change_results(instance):
    from repro import ExecutionOptions
    from repro.exec.transfer import TransferOptions

    db, query = instance
    pruned = db.execute(
        query, mode=ExecutionMode.RPT,
        options=ExecutionOptions(transfer=TransferOptions(prune_trivial_semijoins=True)),
    )
    unpruned = db.execute(
        query, mode=ExecutionMode.RPT,
        options=ExecutionOptions(transfer=TransferOptions(prune_trivial_semijoins=False)),
    )
    assert pruned.aggregates == unpruned.aggregates
