"""Unit tests for the declarative query specification."""

from __future__ import annotations

import pytest

from repro.errors import PlanError
from repro.query import (
    AggregateSpec,
    JoinCondition,
    PostJoinPredicate,
    QualifiedComparison,
    QuerySpec,
    RelationRef,
    count_star,
)


def _two_table_query() -> QuerySpec:
    return QuerySpec(
        name="q",
        relations=(RelationRef("a", "ta"), RelationRef("b", "tb")),
        joins=(JoinCondition("a", "x", "b", "y"),),
    )


class TestRelationRef:
    def test_requires_names(self):
        with pytest.raises(PlanError):
            RelationRef("", "t")
        with pytest.raises(PlanError):
            RelationRef("a", "")


class TestJoinCondition:
    def test_self_join_same_alias_rejected(self):
        with pytest.raises(PlanError):
            JoinCondition("a", "x", "a", "y")

    def test_aliases_and_side(self):
        join = JoinCondition("a", "x", "b", "y")
        assert join.aliases() == frozenset({"a", "b"})
        assert join.side("a") == "x"
        assert join.side("b") == "y"
        with pytest.raises(PlanError):
            join.side("c")


class TestAggregateSpec:
    def test_count_star_default(self):
        agg = count_star()
        assert agg.function == "count"

    def test_sum_requires_column(self):
        with pytest.raises(PlanError):
            AggregateSpec(function="sum")

    def test_unknown_function(self):
        with pytest.raises(PlanError):
            AggregateSpec(function="median", alias="a", column="x")


class TestQuerySpec:
    def test_basic_introspection(self):
        q = _two_table_query()
        assert q.aliases == ("a", "b")
        assert q.num_joins == 1
        assert q.relation("a").table == "ta"
        assert q.joins_between("a", "b") == q.joins
        assert q.joins_between("b", "a") == q.joins
        assert q.joins_involving("a") == q.joins
        assert q.neighbors("a") == frozenset({"b"})
        assert q.is_connected()

    def test_duplicate_aliases_rejected(self):
        with pytest.raises(PlanError):
            QuerySpec(
                name="bad",
                relations=(RelationRef("a", "t"), RelationRef("a", "t")),
                joins=(),
            )

    def test_unknown_join_alias_rejected(self):
        with pytest.raises(PlanError):
            QuerySpec(
                name="bad",
                relations=(RelationRef("a", "t"),),
                joins=(JoinCondition("a", "x", "b", "y"),),
            )

    def test_unknown_relation_lookup_raises(self):
        with pytest.raises(PlanError):
            _two_table_query().relation("zz")

    def test_disconnected_query_detected(self):
        q = QuerySpec(
            name="disc",
            relations=(RelationRef("a", "t"), RelationRef("b", "t"), RelationRef("c", "t")),
            joins=(JoinCondition("a", "x", "b", "x"),),
        )
        assert not q.is_connected()

    def test_post_join_predicate_alias_validation(self):
        predicate = PostJoinPredicate(
            disjuncts=((QualifiedComparison("z", "c", "==", 1),),)
        )
        with pytest.raises(PlanError):
            QuerySpec(
                name="bad",
                relations=(RelationRef("a", "t"),),
                joins=(),
                post_join_predicates=(predicate,),
            )

    def test_post_join_predicate_required_aliases(self):
        predicate = PostJoinPredicate(
            disjuncts=(
                (QualifiedComparison("a", "x", "<", 5), QualifiedComparison("b", "y", ">", 1)),
                (QualifiedComparison("a", "x", ">", 50),),
            )
        )
        assert predicate.required_aliases() == frozenset({"a", "b"})

    def test_with_aggregates(self):
        q = _two_table_query().with_aggregates([AggregateSpec("sum", "a", "x", "total")])
        assert q.aggregates[0].function == "sum"
        assert q.name == "q"
