"""Unit tests for robustness factors, summaries, and speedup helpers."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    geometric_mean,
    robustness_factor,
    speedup,
    summarize_robustness,
)
from repro.errors import BenchmarkError


class TestRobustnessFactor:
    def test_basic(self):
        rf = robustness_factor("q1", "baseline", [1.0, 2.0, 10.0])
        assert rf.factor == pytest.approx(10.0)
        assert rf.min_cost == 1.0
        assert rf.max_cost == 10.0
        assert rf.median_cost == 2.0
        assert rf.mean_cost == pytest.approx(13.0 / 3.0)
        assert rf.num_plans == 3

    def test_even_median(self):
        rf = robustness_factor("q", "m", [1.0, 2.0, 3.0, 4.0])
        assert rf.median_cost == pytest.approx(2.5)

    def test_identical_costs_give_rf_one(self):
        assert robustness_factor("q", "m", [5.0, 5.0, 5.0]).factor == pytest.approx(1.0)

    def test_zero_min_gives_infinite(self):
        assert math.isinf(robustness_factor("q", "m", [0.0, 1.0]).factor)
        assert robustness_factor("q", "m", [0.0, 0.0]).factor == 1.0

    def test_empty_costs_rejected(self):
        with pytest.raises(BenchmarkError):
            robustness_factor("q", "m", [])

    @given(st.lists(st.floats(min_value=0.001, max_value=1e6), min_size=1, max_size=50))
    @settings(max_examples=60, deadline=None)
    def test_factor_at_least_one(self, costs):
        assert robustness_factor("q", "m", costs).factor >= 1.0 - 1e-12


class TestSummaries:
    def test_summarize(self):
        factors = [
            robustness_factor("q1", "m", [1.0, 2.0]),
            robustness_factor("q2", "m", [1.0, 4.0]),
            robustness_factor("q3", "m", [3.0, 3.0]),
        ]
        summary = summarize_robustness("TPC-H", "m", factors)
        assert summary.min_rf == pytest.approx(1.0)
        assert summary.max_rf == pytest.approx(4.0)
        assert summary.avg_rf == pytest.approx((2.0 + 4.0 + 1.0) / 3.0)
        assert summary.num_queries == 3
        assert summary.as_row() == {
            "avg": summary.avg_rf, "min": summary.min_rf, "max": summary.max_rf,
        }

    def test_empty_rejected(self):
        with pytest.raises(BenchmarkError):
            summarize_robustness("b", "m", [])

    def test_infinite_factors_ignored_when_finite_exist(self):
        factors = [
            robustness_factor("q1", "m", [0.0, 1.0]),  # infinite
            robustness_factor("q2", "m", [1.0, 2.0]),
        ]
        summary = summarize_robustness("b", "m", factors)
        assert math.isfinite(summary.avg_rf)
        assert summary.num_queries == 2


class TestSpeedupHelpers:
    def test_speedup(self):
        assert speedup(10.0, 5.0) == pytest.approx(2.0)
        assert speedup(5.0, 10.0) == pytest.approx(0.5)
        assert math.isinf(speedup(1.0, 0.0))
        assert speedup(0.0, 0.0) == 1.0

    def test_geometric_mean(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)
        assert geometric_mean([1.0, 1.0, 1.0]) == pytest.approx(1.0)

    def test_geometric_mean_requires_positive(self):
        with pytest.raises(BenchmarkError):
            geometric_mean([0.0, -1.0])

    @given(st.lists(st.floats(min_value=0.01, max_value=100.0), min_size=1, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_geometric_mean_between_min_and_max(self, values):
        gm = geometric_mean(values)
        assert min(values) - 1e-9 <= gm <= max(values) + 1e-9
