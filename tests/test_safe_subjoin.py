"""Unit tests for SafeSubjoin and safe join-order checking (Algorithm 2, Lemma 3.7)."""

from __future__ import annotations

import pytest

from repro.core import JoinGraph, is_gamma_acyclic, is_safe_join_order, safe_subjoin, unsafe_prefixes
from repro.errors import PlanError
from repro.query import JoinCondition, QuerySpec, RelationRef


def _graph(relations, joins, sizes=None) -> JoinGraph:
    query = QuerySpec(
        name="q",
        relations=tuple(RelationRef(a, f"table_{a}") for a in relations),
        joins=tuple(JoinCondition(*j) for j in joins),
    )
    return JoinGraph.from_query(query, sizes or {a: 10 * (i + 1) for i, a in enumerate(relations)})


@pytest.fixture()
def paper_example() -> JoinGraph:
    """§3.2 example: R(A,B,C) ⋈ S(A,B) ⋈ T(B,C); only join tree is S - R - T."""
    return _graph(
        ["r", "s", "t"],
        [("r", "a", "s", "a"), ("r", "b", "s", "b"), ("r", "b", "t", "b"), ("r", "c", "t", "c")],
        {"r": 1000, "s": 1000, "t": 1000},
    )


@pytest.fixture()
def star_graph() -> JoinGraph:
    """Gamma-acyclic star: fact joins three dimensions on distinct keys."""
    return _graph(
        ["f", "d1", "d2", "d3"],
        [("f", "k1", "d1", "id"), ("f", "k2", "d2", "id"), ("f", "k3", "d3", "id")],
        {"f": 10_000, "d1": 10, "d2": 20, "d3": 30},
    )


class TestSafeSubjoin:
    def test_paper_example_rs_and_rt_safe(self, paper_example):
        assert safe_subjoin(paper_example, ["r", "s"])
        assert safe_subjoin(paper_example, ["r", "t"])

    def test_paper_example_st_unsafe(self, paper_example):
        assert not safe_subjoin(paper_example, ["s", "t"])

    def test_full_query_always_safe(self, paper_example):
        assert safe_subjoin(paper_example, ["r", "s", "t"])

    def test_single_relation_safe(self, paper_example):
        assert safe_subjoin(paper_example, ["s"])

    def test_disconnected_subjoin_unsafe(self, star_graph):
        assert not safe_subjoin(star_graph, ["d1", "d2"])

    def test_star_subjoins_safe(self, star_graph):
        assert safe_subjoin(star_graph, ["f", "d1"])
        assert safe_subjoin(star_graph, ["f", "d1", "d3"])

    def test_empty_subjoin_raises(self, paper_example):
        with pytest.raises(PlanError):
            safe_subjoin(paper_example, [])

    def test_unknown_alias_raises(self, paper_example):
        with pytest.raises(PlanError):
            safe_subjoin(paper_example, ["zz"])

    def test_duplicates_tolerated(self, paper_example):
        assert safe_subjoin(paper_example, ["r", "s", "r"])


class TestSafeJoinOrder:
    def test_safe_orders(self, paper_example):
        assert is_safe_join_order(paper_example, ["r", "s", "t"])
        assert is_safe_join_order(paper_example, ["s", "r", "t"])
        assert is_safe_join_order(paper_example, ["t", "r", "s"])

    def test_unsafe_order_detected(self, paper_example):
        assert not is_safe_join_order(paper_example, ["s", "t", "r"])
        assert not is_safe_join_order(paper_example, ["t", "s", "r"])

    def test_gamma_acyclic_all_connected_orders_safe(self, star_graph):
        assert is_gamma_acyclic(star_graph)
        assert is_safe_join_order(star_graph, ["d1", "f", "d2", "d3"])
        assert is_safe_join_order(star_graph, ["f", "d3", "d2", "d1"])

    def test_cartesian_product_orders_unsafe_even_if_gamma_acyclic(self, star_graph):
        assert not is_safe_join_order(star_graph, ["d1", "d2", "f", "d3"])

    def test_invalid_permutation_rejected(self, paper_example):
        with pytest.raises(PlanError):
            is_safe_join_order(paper_example, ["r", "s"])
        with pytest.raises(PlanError):
            is_safe_join_order(paper_example, ["r", "s", "s"])

    def test_unsafe_prefix_reporting(self, paper_example):
        offenders = unsafe_prefixes(paper_example, ["s", "t", "r"])
        assert frozenset({"s", "t"}) in offenders
        assert unsafe_prefixes(paper_example, ["s", "r", "t"]) == []

    def test_forced_gamma_flag_skips_subjoin_checks(self, paper_example):
        # With the flag forced, the connectivity-only check passes the unsafe order;
        # this documents that the flag is only sound for genuinely gamma-acyclic queries.
        assert is_safe_join_order(paper_example, ["s", "t", "r"], assume_gamma_acyclic=True)
