"""Concurrent serving layer: Server/Session, admission, plan cache, snapshots.

The acceptance contract under test: any number of concurrent clients over
one shared :class:`Database` get results bit-identical to a single-threaded
serial run; overload sheds with typed :class:`AdmissionRejected` (never a
hang or an unbounded queue); a ``register(..., replace=True)`` never tears
a running query — it keeps reading its pinned snapshot, and the replaced
version's cached artifacts and shm segments are released when the last
reader lets go.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro import (
    AdmissionRejected,
    Database,
    ExecutionMode,
    Server,
    ServerConfig,
    Session,
)
from repro.bench import build_serving_fleet, run_serving_benchmark
from repro.engine.database import ExecutionOptions, ExplainResult
from repro.engine.modes import ExecutionConfig
from repro.errors import QueryCancelled, QueryTimeout, ReproError
from repro.storage import buffer, shm
from repro.workloads import sqlfiles

QUERY = (
    "SELECT COUNT(*) AS n, SUM(f.v) AS s FROM f, d "
    "WHERE f.d_id = d.id AND d.grp < 5 AND f.v > 50"
)


def _make_db(rows: int = 20_000, dims: int = 50, value_scale: int = 1) -> Database:
    rng = np.random.default_rng(7)
    db = Database()
    db.register_dataframe(
        "d",
        {"id": np.arange(dims, dtype=np.int64), "grp": np.arange(dims, dtype=np.int64) % 10},
        primary_key=["id"],
    )
    db.register_dataframe(
        "f",
        {
            "id": np.arange(rows, dtype=np.int64),
            "d_id": rng.integers(0, dims, rows).astype(np.int64),
            "v": (rng.integers(0, 1000, rows) * value_scale).astype(np.int64),
        },
        primary_key=["id"],
    )
    return db


def _serial() -> ExecutionOptions:
    return ExecutionOptions(execution=ExecutionConfig(backend="serial"))


# ---------------------------------------------------------------------------
# Server / Session basics
# ---------------------------------------------------------------------------
class TestServerBasics:
    def test_session_sql_matches_direct_execution(self):
        db = _make_db()
        baseline = db.sql(QUERY, options=_serial())
        with Server(db, options=_serial()) as server:
            with server.session(name="alice") as session:
                result = session.sql(QUERY)
                assert result.aggregates == baseline.aggregates
                assert session.queries_completed == 1
            stats = server.stats()
            assert stats.admitted == 1 and stats.completed == 1
            assert stats.rejected == 0 and stats.failed == 0
        assert server.closed
        db.close()

    def test_session_execute_queryspec_and_explain(self):
        db = _make_db()
        with Server(db, options=_serial()) as server:
            session = server.session()
            from repro.sql import compile_statement

            spec = compile_statement(QUERY, db.catalog).query
            result = session.execute(spec, mode=ExecutionMode.RPT)
            assert result.aggregates == db.sql(QUERY, options=_serial()).aggregates
            explained = session.sql(f"EXPLAIN {QUERY}")
            assert isinstance(explained, ExplainResult)
        db.close()

    def test_closed_session_raises_and_close_is_idempotent(self):
        db = _make_db(rows=500)
        server = Server(db, options=_serial())
        session = server.session()
        session.close()
        session.close()
        with pytest.raises(ReproError, match="closed"):
            session.sql(QUERY)
        server.close()
        db.close()

    def test_closed_server_rejects_with_typed_error(self):
        db = _make_db(rows=500)
        server = Server(db, options=_serial())
        session = server.session()
        server.close()
        server.close()  # idempotent
        with pytest.raises(ReproError, match="closed"):
            server.session()
        with pytest.raises(AdmissionRejected) as info:
            session.sql(QUERY)
        assert info.value.reason == "closed"
        assert session.queries_rejected == 1
        # The database outlives its server unless close_database is set.
        assert not db.closed
        db.close()

    def test_close_database_flag_closes_database(self):
        db = _make_db(rows=500)
        server = Server(db, options=_serial())
        server.close(close_database=True)
        assert db.closed

    def test_failed_query_counts_and_server_survives(self):
        db = _make_db(rows=500)
        with Server(db, options=_serial()) as server:
            session = server.session()
            with pytest.raises(ReproError):
                session.sql("SELECT COUNT(*) FROM no_such_table")
            assert session.queries_failed == 1
            # The slot and any reservation were released on failure.
            assert server.active_queries == 0
            assert server.reserved_memory_bytes == 0
            session.sql(QUERY)  # server still serves
        db.close()


# ---------------------------------------------------------------------------
# Admission control and overload shedding
# ---------------------------------------------------------------------------
class TestAdmission:
    def _occupied_server(self, db, **config):
        server = Server(db, config=ServerConfig(**config), options=_serial())
        # White-box: claim every execution slot, as a stuck query would.
        with server._cond:
            server._running = server.config.max_concurrent
        return server

    def _vacate(self, server):
        with server._cond:
            server._running = 0
            server._cond.notify_all()

    def test_queue_full_rejects_immediately_with_retry_hint(self):
        db = _make_db(rows=500)
        server = self._occupied_server(db, max_concurrent=1, max_queue=0)
        session = server.session()
        with pytest.raises(AdmissionRejected) as info:
            session.sql(QUERY)
        assert info.value.reason == "queue_full"
        assert info.value.retry_after_seconds > 0
        assert server.stats().rejected_queue_full == 1
        self._vacate(server)
        server.close()
        db.close()

    def test_admission_timeout_sheds_queued_query(self):
        db = _make_db(rows=500)
        server = self._occupied_server(
            db, max_concurrent=1, max_queue=4, admission_timeout_seconds=0.05
        )
        session = server.session()
        start = time.monotonic()
        with pytest.raises(AdmissionRejected) as info:
            session.sql(QUERY)
        assert info.value.reason == "timeout"
        assert time.monotonic() - start < 5.0  # bounded wait, no hang
        assert server.stats().rejected_timeout == 1
        assert server.queued_queries == 0
        self._vacate(server)
        server.close()
        db.close()

    def test_memory_admission_rejects_over_budget(self):
        db = _make_db(rows=500)
        server = Server(
            db,
            config=ServerConfig(
                session_memory_bytes=1 << 20, memory_budget_bytes=1 << 10
            ),
            options=_serial(),
        )
        session = server.session()
        with pytest.raises(AdmissionRejected) as info:
            session.sql(QUERY)
        assert info.value.reason == "memory"
        assert server.stats().rejected_memory == 1
        assert server.reserved_memory_bytes == 0
        server.close()
        db.close()

    def test_memory_reservations_flow_through_governor(self):
        db = _make_db(rows=500)
        server = Server(
            db,
            config=ServerConfig(
                session_memory_bytes=1 << 16, memory_budget_bytes=1 << 20
            ),
            options=_serial(),
        )
        session = server.session()
        session.sql(QUERY)
        assert server.reserved_memory_bytes == 0  # released after completion
        server.close()
        db.close()
        buffer.assert_no_outstanding_reservations()

    def test_queued_query_records_degradation(self):
        db = _make_db(rows=500)
        server = self._occupied_server(
            db, max_concurrent=1, max_queue=4, admission_timeout_seconds=10.0
        )
        session = server.session()
        outcome = {}

        def client():
            outcome["result"] = session.sql(QUERY)

        thread = threading.Thread(target=client)
        thread.start()
        deadline = time.monotonic() + 5.0
        while server.queued_queries == 0 and time.monotonic() < deadline:
            time.sleep(0.002)
        assert server.queued_queries == 1
        self._vacate(server)
        thread.join(timeout=10.0)
        assert not thread.is_alive()
        result = outcome["result"]
        assert any(
            note.startswith("admission:queued") for note in result.stats.degradations
        )
        server.close()
        db.close()

    def test_overload_sheds_typed_and_never_hangs(self):
        """8 un-retrying clients against a 1-slot server: shed, don't hang."""
        db = _make_db()
        server = Server(
            db,
            config=ServerConfig(
                max_concurrent=1, max_queue=1, admission_timeout_seconds=0.02
            ),
            options=_serial(),
        )
        attempts_per_client = 4
        outcomes = []
        lock = threading.Lock()

        def client():
            session = server.session()
            for _ in range(attempts_per_client):
                try:
                    session.sql(QUERY)
                    with lock:
                        outcomes.append("completed")
                except AdmissionRejected as exc:
                    assert exc.reason in ("queue_full", "timeout")
                    assert exc.retry_after_seconds > 0
                    with lock:
                        outcomes.append("rejected")

        threads = [threading.Thread(target=client) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60.0)
        assert not any(t.is_alive() for t in threads)
        assert len(outcomes) == 8 * attempts_per_client  # nothing vanished
        assert outcomes.count("completed") > 0
        stats = server.stats()
        assert stats.completed == outcomes.count("completed")
        assert stats.rejected == outcomes.count("rejected")
        assert server.active_queries == 0 and server.queued_queries == 0
        assert server.reserved_memory_bytes == 0
        server.close()
        db.close()


# ---------------------------------------------------------------------------
# Plan cache
# ---------------------------------------------------------------------------
class TestPlanCache:
    def test_reformatted_sql_hits_cache(self):
        db = _make_db()
        with Server(db, options=_serial()) as server:
            session = server.session()
            first = session.sql(QUERY)
            # Same statement, different surface text: extra whitespace and
            # keyword case normalize away in the round-trip formatter.
            reformatted = (
                "select   COUNT(*) AS n,\n   sum(f.v) AS s\n FROM f, d "
                "WHERE f.d_id = d.id AND d.grp < 5 AND f.v > 50"
            )
            second = session.sql(reformatted)
            assert second.aggregates == first.aggregates
            stats = server.stats()
            assert stats.plan_cache_misses == 1
            assert stats.plan_cache_hits == 1
        db.close()

    def test_replace_invalidates_by_catalog_version(self):
        db = _make_db()
        with Server(db, options=_serial()) as server:
            session = server.session()
            session.sql(QUERY)
            session.sql(QUERY)
            assert server.stats().plan_cache_hits == 1
            # Replacing a referenced table changes its version: the cached
            # plan's key no longer matches, so the next run is a miss.
            db.register_dataframe(
                "d",
                {
                    "id": np.arange(50, dtype=np.int64),
                    "grp": np.arange(50, dtype=np.int64) % 10,
                },
                primary_key=["id"],
                replace=True,
            )
            session.sql(QUERY)
            stats = server.stats()
            assert stats.plan_cache_misses == 2
            assert stats.plan_cache_hits == 1
        db.close()

    def test_mode_and_options_partition_the_cache(self):
        db = _make_db()
        with Server(db, options=_serial()) as server:
            session = server.session()
            session.sql(QUERY, mode=ExecutionMode.RPT)
            session.sql(QUERY, mode=ExecutionMode.BASELINE)
            assert server.stats().plan_cache_misses == 2
        db.close()

    def test_plan_cache_disabled(self):
        db = _make_db(rows=500)
        with Server(
            db, config=ServerConfig(plan_cache=False), options=_serial()
        ) as server:
            assert server.plan_cache is None
            session = server.session()
            session.sql(QUERY)
            session.sql(QUERY)
            stats = server.stats()
            assert stats.plan_cache_hits == 0 and stats.plan_cache_misses == 0
        db.close()


# ---------------------------------------------------------------------------
# Snapshot isolation (MVCC-lite) across backends
# ---------------------------------------------------------------------------
class TestSnapshotIsolation:
    @pytest.mark.parametrize("backend", ["serial", "chunked", "parallel", "process"])
    def test_pinned_snapshot_survives_replace(self, backend):
        db = _make_db(value_scale=1)
        from repro.sql import compile_statement

        spec = compile_statement(QUERY, db.catalog).query
        options = ExecutionOptions(
            execution=ExecutionConfig(
                backend=backend, chunk_size=4096, num_workers=2, artifact_cache=True
            )
        )
        old_result = db.execute(spec, options=options)
        snap = db.catalog.snapshot(["f", "d"])
        old_version = snap.version("f")

        # Replace the fact table with doubled values: new queries see the
        # new data, the pinned snapshot keeps the old image.
        rng = np.random.default_rng(7)
        rows, dims = 20_000, 50
        db.register_dataframe(
            "f",
            {
                "id": np.arange(rows, dtype=np.int64),
                "d_id": rng.integers(0, dims, rows).astype(np.int64),
                "v": (rng.integers(0, 1000, rows) * 2).astype(np.int64),
            },
            primary_key=["id"],
            replace=True,
        )
        new_result = db.execute(spec, options=options)
        assert new_result.aggregates != old_result.aggregates

        pinned = db.execute(spec, options=options, snapshot=snap)
        assert pinned.aggregates == old_result.aggregates
        assert pinned.output_rows == old_result.output_rows
        assert db.catalog.retained_version_count() >= 1

        snap.release()
        assert db.catalog.pinned_version_count() == 0
        assert db.catalog.retained_version_count() == 0
        # Release-driven invalidation: nothing cached for the old version.
        cache = db.artifact_cache
        if cache is not None:
            assert not any(
                key.table == "f" and key.table_version == old_version
                for key in cache._entries
            )
        arena = db.shm_arena
        if arena is not None:
            assert not any(
                key[0] == "f" and key[1] == old_version
                for key in arena.published_keys()
            )
        db.close()

    def test_replace_flapping_race_matches_a_committed_version(self):
        """Queries racing replace-flapping always see exactly version A or B."""
        rows, dims = 20_000, 50
        fact = lambda scale: {  # noqa: E731 - tiny local factory
            "id": np.arange(rows, dtype=np.int64),
            "d_id": np.random.default_rng(7).integers(0, dims, rows).astype(np.int64),
            "v": (np.random.default_rng(7).integers(0, 1000, rows) * scale).astype(
                np.int64
            ),
        }
        db = _make_db()
        db.register_dataframe("f", fact(1), primary_key=["id"], replace=True)
        baseline_a = db.sql(QUERY, options=_serial()).aggregates
        db.register_dataframe("f", fact(2), primary_key=["id"], replace=True)
        baseline_b = db.sql(QUERY, options=_serial()).aggregates
        assert baseline_a != baseline_b

        server = Server(db, options=_serial())
        stop = threading.Event()
        errors = []

        def flapper():
            for generation in range(30):
                db.register_dataframe(
                    "f", fact(1 if generation % 2 else 2), primary_key=["id"], replace=True
                )
            stop.set()

        def client():
            session = server.session()
            try:
                while not stop.is_set():
                    aggregates = session.sql(QUERY).aggregates
                    # Never a torn mix of the two versions.
                    assert aggregates in (baseline_a, baseline_b)
            except Exception as exc:  # noqa: BLE001 - surface in main thread
                errors.append(exc)

        threads = [threading.Thread(target=flapper)] + [
            threading.Thread(target=client) for _ in range(6)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120.0)
        assert not any(t.is_alive() for t in threads)
        assert not errors, errors
        server.close()
        assert db.catalog.pinned_version_count() == 0
        assert db.catalog.retained_version_count() == 0
        db.close()
        shm.assert_no_transient_leaks()


# ---------------------------------------------------------------------------
# Concurrent clients over the checked-in SQL files (driver-based)
# ---------------------------------------------------------------------------
class TestConcurrentClients:
    @pytest.mark.parametrize("backend", ["serial", "process"])
    def test_eight_clients_bit_identical(self, backend):
        """8 closed-loop clients over the synthetic workloads: bit-identity.

        The full 56-file sweep runs in ``benchmarks/test_serving_microbench``;
        this keeps the per-backend serving contract in the unit suite.
        """
        stems = [s for s in sqlfiles.available() if s.startswith("synthetic_")]
        fleet = build_serving_fleet(scale=0.05, seed=1, stems=stems)
        try:
            report = run_serving_benchmark(
                fleet, clients=8, rounds=2, seed=17, backend=backend
            )
        finally:
            fleet.close()
        assert report.verified
        assert report.completed == report.statements * 2
        assert report.shed == 0 and not report.typed_errors

    def test_chaos_mode_typed_or_identical(self):
        """Faults × concurrency: bit-identical or typed, and leak-free."""
        stems = [s for s in sqlfiles.available() if s.startswith("synthetic_")]
        fleet = build_serving_fleet(scale=0.05, seed=1, stems=stems)
        try:
            report = run_serving_benchmark(
                fleet,
                clients=8,
                rounds=2,
                seed=23,
                backend="serial",
                fault_spec="seed:1234,rate:0.05",
            )
        finally:
            fleet.close()
        assert report.verified
        assert report.completed + sum(report.typed_errors.values()) + report.shed == (
            report.statements * 2
        )


# ---------------------------------------------------------------------------
# Server close vs in-flight queries
# ---------------------------------------------------------------------------
class TestServerClose:
    def test_close_cancels_active_queries(self):
        db = _make_db(rows=400_000, dims=200)
        server = Server(db, options=_serial())
        outcomes = []
        lock = threading.Lock()
        started = threading.Barrier(5)

        def client():
            session = server.session()
            started.wait()
            try:
                session.sql(QUERY)
                with lock:
                    outcomes.append("completed")
            except (QueryCancelled, QueryTimeout):
                with lock:
                    outcomes.append("cancelled")
            except AdmissionRejected:
                with lock:
                    outcomes.append("rejected")

        threads = [threading.Thread(target=client) for _ in range(4)]
        for t in threads:
            t.start()
        started.wait()  # all clients submitted (or about to)
        server.close(cancel_active=True)
        for t in threads:
            t.join(timeout=30.0)
        assert not any(t.is_alive() for t in threads)
        assert len(outcomes) == 4  # every client got a definite outcome
        assert server.active_queries == 0
        assert server.reserved_memory_bytes == 0
        # The database survives its server.
        assert not db.closed
        db.sql("SELECT COUNT(*) AS n FROM d", options=_serial())
        db.close()

    def test_close_without_cancel_drains(self):
        db = _make_db()
        server = Server(db, options=_serial())
        results = []

        def client():
            session = server.session()
            try:
                results.append(session.sql(QUERY))
            except AdmissionRejected:
                pass  # lost the race with close(): typed, not a hang

        threads = [threading.Thread(target=client) for _ in range(3)]
        for t in threads:
            t.start()
        server.close(cancel_active=False)
        for t in threads:
            t.join(timeout=30.0)
        assert not any(t.is_alive() for t in threads)
        # Whatever was admitted before close sealed finished normally;
        # later arrivals saw a typed rejection — but nobody hung.
        assert all(r.aggregates for r in results) or results == []
        db.close()
