"""SQL front end: lexer, parser (golden ASTs + error positions), binder, lowering.

The acceptance contract: well-formed SQL lowers to exactly the QuerySpec a
hand-built definition would produce, and *every* malformed input raises
:class:`SqlError` — with a line/column position and a caret rendering —
never a bare exception.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import Database, ExecutionMode, SqlError
from repro.errors import ReproError
from repro.expr import (
    And,
    Between,
    Comparison,
    InList,
    IsNull,
    Not,
    Or,
    StringPredicate,
    eq,
    is_not_null,
    is_null,
)
from repro.query import (
    AggregateSpec,
    JoinCondition,
    PostJoinPredicate,
    QualifiedComparison,
    QuerySpec,
    RelationRef,
)
from repro.sql import compile_statement, parse_statement, split_statements, to_sql, tokenize
from repro.sql.ast import (
    AndExpr,
    BetweenExpr,
    ColumnName,
    ComparisonExpr,
    InExpr,
    LikeExpr,
    LiteralValue,
    NotExpr,
    OrExpr,
)
from repro.sql.corpus import MALFORMED_CORPUS, MALFORMED_SEMANTIC, MALFORMED_SYNTAX


@pytest.fixture(scope="module")
def small_db() -> Database:
    """Two tiny joinable tables (t(a, b) ⋈ s(a, c)) plus a string column."""
    db = Database()
    db.register_dataframe(
        "t", {"a": np.arange(10), "b": np.arange(10) * 2}, primary_key=["a"]
    )
    db.register_dataframe(
        "s",
        {
            "a": np.array([0, 1, 2, 3, 4, 0, 1, 2, 3, 4]),
            "c": np.arange(10),
            "label": [f"item{i}" for i in range(10)],
        },
    )
    return db


# ---------------------------------------------------------------------------
# Lexer
# ---------------------------------------------------------------------------
class TestLexer:
    def test_token_kinds_and_values(self):
        tokens = tokenize("SELECT COUNT(*) FROM t WHERE a >= 1.5 AND b = 'x''y'")
        kinds = [t.kind for t in tokens]
        assert kinds[-1] == "eof"
        texts = [t.text for t in tokens[:-1]]
        assert texts[:4] == ["SELECT", "COUNT", "(", "*"]
        number = next(t for t in tokens if t.kind == "number")
        assert number.value == 1.5
        string = next(t for t in tokens if t.kind == "string")
        assert string.value == "x'y"

    def test_keywords_case_insensitive(self):
        tokens = tokenize("select From wHeRe")
        assert [t.text for t in tokens[:-1]] == ["SELECT", "FROM", "WHERE"]

    def test_comments_skipped(self):
        tokens = tokenize("SELECT -- comment\n /* block\nspanning */ FROM")
        assert [t.text for t in tokens[:-1]] == ["SELECT", "FROM"]

    def test_negative_number(self):
        tokens = tokenize("WHERE a > -999.0")
        number = next(t for t in tokens if t.kind == "number")
        assert number.value == -999.0

    def test_unexpected_character_position(self):
        with pytest.raises(SqlError) as info:
            tokenize("SELECT @")
        assert info.value.pos == 7
        assert info.value.line == 1
        assert info.value.column == 8

    def test_unterminated_string(self):
        with pytest.raises(SqlError, match="unterminated string"):
            tokenize("WHERE a = 'oops")

    def test_unterminated_block_comment(self):
        with pytest.raises(SqlError, match="unterminated block comment"):
            tokenize("SELECT /* oops")


# ---------------------------------------------------------------------------
# Parser: golden ASTs
# ---------------------------------------------------------------------------
class TestParserGolden:
    def test_minimal_select(self):
        stmt = parse_statement("SELECT COUNT(*) FROM t")
        assert not stmt.explain
        assert len(stmt.items) == 1
        item = stmt.items[0]
        assert item.function == "count" and item.star and item.output_name is None
        assert stmt.tables[0].table == "t" and stmt.tables[0].alias == "t"
        assert stmt.where is None

    def test_aliases_and_output_names(self):
        stmt = parse_statement(
            "SELECT COUNT(*) AS n, SUM(l.price) revenue FROM lineitem AS l, orders o"
        )
        assert stmt.items[0].output_name == "n"
        assert stmt.items[1].function == "sum"
        # pos anchors at the qualifier token ("l.price" starts at offset 26).
        assert stmt.items[1].column == ColumnName(name="price", qualifier="l", pos=26)
        assert stmt.items[1].output_name == "revenue"
        assert [(t.table, t.alias) for t in stmt.tables] == [("lineitem", "l"), ("orders", "o")]

    def test_where_tree_shape(self):
        stmt = parse_statement(
            "SELECT COUNT(*) FROM t WHERE a = 1 AND (b < 2 OR b > 5) AND NOT c IN (1, 2)"
        )
        where = stmt.where
        assert isinstance(where, AndExpr) and len(where.operands) == 3
        first, second, third = where.operands
        assert isinstance(first, ComparisonExpr) and first.op == "="
        assert isinstance(first.left, ColumnName) and first.left.name == "a"
        assert isinstance(first.right, LiteralValue) and first.right.value == 1
        assert isinstance(second, OrExpr) and len(second.operands) == 2
        assert isinstance(third, NotExpr)
        assert isinstance(third.operand, InExpr)
        assert [v.value for v in third.operand.values] == [1, 2]

    def test_nested_parens_not_flattened(self):
        stmt = parse_statement("SELECT COUNT(*) FROM t WHERE (a = 1 AND b = 2) AND c = 3")
        where = stmt.where
        assert isinstance(where, AndExpr) and len(where.operands) == 2
        assert isinstance(where.operands[0], AndExpr)

    def test_between_not_confused_by_and(self):
        stmt = parse_statement("SELECT COUNT(*) FROM t WHERE a BETWEEN 1 AND 5 AND b = 2")
        where = stmt.where
        assert isinstance(where, AndExpr) and len(where.operands) == 2
        assert isinstance(where.operands[0], BetweenExpr)
        assert where.operands[0].low.value == 1 and where.operands[0].high.value == 5

    def test_predicate_forms(self):
        stmt = parse_statement(
            "SELECT COUNT(*) FROM t WHERE a NOT BETWEEN 1 AND 2 AND b NOT LIKE 'x%' "
            "AND c IS NOT NULL AND d IS NULL AND 5 < e"
        )
        between, like, notnull, null, flipped = stmt.where.operands
        assert isinstance(between, BetweenExpr) and between.negated
        assert isinstance(like, LikeExpr) and like.negated and like.pattern == "x%"
        assert notnull.negated and not null.negated
        assert isinstance(flipped.left, LiteralValue) and isinstance(flipped.right, ColumnName)

    def test_explain_and_name_directive(self):
        stmt = parse_statement("-- name: my_query\nEXPLAIN SELECT COUNT(*) FROM t;")
        assert stmt.explain
        assert stmt.name == "my_query"

    def test_name_directive_only_from_leading_comments(self):
        # A "-- name:" sequence inside a string literal or a trailing
        # comment must not override the query name.
        in_string = parse_statement("SELECT COUNT(*) FROM t WHERE a = '-- name: evil'")
        assert in_string.name is None
        trailing = parse_statement("SELECT COUNT(*) FROM t -- name: late")
        assert trailing.name is None
        leading_block = parse_statement("/* -- name: blocky */ SELECT COUNT(*) FROM t")
        assert leading_block.name == "blocky"

    def test_keyword_named_column_parses_when_qualified(self):
        stmt = parse_statement("SELECT COUNT(*) FROM t WHERE t.min < 3 AND t.Like = 1")
        first, second = stmt.where.operands
        assert first.left == ColumnName(name="min", qualifier="t", pos=29)
        # Original spelling is preserved, not the canonical keyword case.
        assert second.left.name == "Like"

    def test_error_position_points_at_offender(self):
        source = "SELECT COUNT(*) FROM t\nWHERE a == 1"
        with pytest.raises(SqlError) as info:
            parse_statement(source)
        # '==' lexes as '=' then '='; the parser trips on the second '='.
        assert info.value.line == 2
        rendered = str(info.value)
        assert "^" in rendered and "line 2" in rendered

    def test_caret_alignment(self):
        source = "SELECT COUNT(*) FROM t WHERE %"
        with pytest.raises(SqlError) as info:
            parse_statement(source)
        message_line, source_line, caret_line = str(info.value).splitlines()
        assert source_line == f"  {source}"
        assert caret_line.index("^") - 2 == source.index("%")


# ---------------------------------------------------------------------------
# Malformed corpus: SqlError always, bare exceptions never
# ---------------------------------------------------------------------------
class TestMalformedCorpus:
    @pytest.mark.parametrize("source", MALFORMED_SYNTAX, ids=range(len(MALFORMED_SYNTAX)))
    def test_syntax_corpus_raises_sql_error(self, source):
        with pytest.raises(SqlError) as info:
            parse_statement(source)
        assert isinstance(info.value, ReproError)
        assert info.value.line is not None and info.value.column is not None

    @pytest.mark.parametrize("source", MALFORMED_CORPUS, ids=range(len(MALFORMED_CORPUS)))
    def test_full_corpus_raises_sql_error_through_database(self, source, small_db):
        with pytest.raises(SqlError):
            small_db.sql(source)

    @pytest.mark.parametrize("source", MALFORMED_SEMANTIC, ids=range(len(MALFORMED_SEMANTIC)))
    def test_semantic_corpus_parses_but_fails_binding(self, source, small_db):
        parse_statement(source)  # must parse cleanly...
        with pytest.raises(SqlError):  # ...and fail at bind/lower time
            compile_statement(source, small_db.catalog)


# ---------------------------------------------------------------------------
# Binder diagnostics
# ---------------------------------------------------------------------------
class TestBinder:
    def test_unknown_table_lists_catalog(self, small_db):
        with pytest.raises(SqlError, match="unknown table 'nope'.*registered tables: s, t"):
            compile_statement("SELECT COUNT(*) FROM nope", small_db.catalog)

    def test_unknown_qualified_column_lists_table_columns(self, small_db):
        with pytest.raises(SqlError, match="unknown column 'z' of alias 't'.*has: a, b"):
            compile_statement("SELECT COUNT(*) FROM t WHERE t.z = 1", small_db.catalog)

    def test_unknown_alias_lists_declared(self, small_db):
        with pytest.raises(SqlError, match="unknown relation alias 'x'.*declared aliases: t"):
            compile_statement("SELECT COUNT(*) FROM t WHERE x.a = 1", small_db.catalog)

    def test_ambiguous_column_names_candidates(self, small_db):
        with pytest.raises(SqlError, match="ambiguous column 'a'.*s.a or t.a"):
            compile_statement("SELECT COUNT(*) FROM t, s WHERE a = 1", small_db.catalog)

    def test_unqualified_column_resolves_when_unique(self, small_db):
        compiled = compile_statement(
            "SELECT COUNT(*) FROM t, s WHERE t.a = s.a AND c = 3", small_db.catalog
        )
        assert compiled.query.relation("s").filter == eq("c", 3)

    def test_query_name_in_messages(self, small_db):
        with pytest.raises(SqlError, match="query 'named_q'"):
            compile_statement(
                "-- name: named_q\nSELECT COUNT(*) FROM t WHERE t.z = 1", small_db.catalog
            )

    def test_numeric_column_vs_string_literal_rejected(self, small_db):
        # Without bind-time type checking this escapes as a raw NumPy
        # ufunc error mid-execution.
        with pytest.raises(SqlError, match="numeric column.*string"):
            small_db.sql("SELECT COUNT(*) FROM t WHERE a < 'x'")
        with pytest.raises(SqlError, match="numeric column"):
            small_db.sql("SELECT COUNT(*) FROM t WHERE a BETWEEN 'x' AND 'y'")
        with pytest.raises(SqlError, match="numeric column"):
            small_db.sql("SELECT COUNT(*) FROM t WHERE a IN (1, 'x')")

    def test_string_column_vs_numeric_literal_rejected(self, small_db):
        with pytest.raises(SqlError, match="string column.*numeric"):
            small_db.sql("SELECT COUNT(*) FROM s WHERE label = 5")

    def test_like_on_numeric_column_rejected_at_bind_time(self, small_db):
        with pytest.raises(SqlError, match="LIKE requires a string column"):
            small_db.sql("SELECT COUNT(*) FROM t WHERE a LIKE 'x%'")

    def test_string_equality_still_binds(self, small_db):
        result = small_db.sql("SELECT COUNT(*) AS n FROM s WHERE label = 'item3'")
        assert result.aggregates["n"] == 1.0

    def test_string_column_join_rejected(self):
        # Dictionary codes are per column; joining them would silently match
        # unrelated strings.
        db = Database()
        db.register_dataframe("x1", {"k": np.arange(3), "s": ["apple", "banana", "cherry"]})
        db.register_dataframe("x2", {"k": np.arange(3), "s2": ["banana", "cherry", "durian"]})
        with pytest.raises(SqlError, match="dictionaries differ"):
            db.sql("SELECT COUNT(*) FROM x1 a, x2 b WHERE a.s = b.s2")
        with pytest.raises(SqlError, match="string column.*numeric"):
            db.sql("SELECT COUNT(*) FROM x1 a, x2 b WHERE a.s = b.k")

    def test_string_self_join_same_column_allowed(self):
        # Two occurrences of the same table column share one dictionary, so
        # the code-level join is exact.
        db = Database()
        db.register_dataframe(
            "w", {"k": np.arange(4), "s": ["a", "b", "b", "c"]}
        )
        result = db.sql("SELECT COUNT(*) AS n FROM w AS l, w AS r WHERE l.s = r.s")
        # a:1x1 + b:2x2 + c:1x1 pairings.
        assert result.aggregates["n"] == 6.0

    def test_string_aggregate_rejected(self, small_db):
        with pytest.raises(SqlError, match=r"SUM\(s.label\) is not supported"):
            small_db.sql("SELECT SUM(s.label) FROM s")
        with pytest.raises(SqlError, match="MIN"):
            small_db.sql("SELECT MIN(s.label) FROM s")
        # COUNT over a string column just counts rows — allowed.
        result = small_db.sql("SELECT COUNT(s.label) AS n FROM s")
        assert result.aggregates["n"] == 10.0

    def test_explicit_name_overrides_directive(self, small_db):
        compiled = compile_statement(
            "-- name: from_directive\nSELECT COUNT(*) FROM t", small_db.catalog, name="override"
        )
        assert compiled.query.name == "override"


# ---------------------------------------------------------------------------
# Lowering: WHERE-conjunct classification
# ---------------------------------------------------------------------------
class TestLowering:
    def test_classification(self, small_db):
        compiled = compile_statement(
            """
            -- name: classified
            SELECT COUNT(*) AS count_star
            FROM t, s
            WHERE t.a = s.a
              AND t.b < 6
              AND (s.c BETWEEN 1 AND 8 AND s.label LIKE 'item%')
            """,
            small_db.catalog,
        )
        spec = compiled.query
        assert spec.joins == (JoinCondition("t", "a", "s", "a"),)
        assert spec.relation("t").filter == Comparison("b", "<", 6)
        assert spec.relation("s").filter == And(
            (Between("c", 1, 8), StringPredicate("label", "prefix", "item"))
        )
        assert spec.post_join_predicates == ()
        assert spec.aggregates == (AggregateSpec(function="count", output_name="count_star"),)

    def test_multiple_conjuncts_same_alias_combine_in_order(self, small_db):
        compiled = compile_statement(
            "SELECT COUNT(*) FROM t WHERE a < 5 AND b > 1 AND a IS NOT NULL",
            small_db.catalog,
        )
        assert compiled.query.relation("t").filter == And(
            (Comparison("a", "<", 5), Comparison("b", ">", 1), is_not_null("a"))
        )

    def test_flipped_literal_comparison(self, small_db):
        compiled = compile_statement(
            "SELECT COUNT(*) FROM t WHERE 5 <= a", small_db.catalog
        )
        assert compiled.query.relation("t").filter == Comparison("a", ">=", 5)

    def test_negated_forms_lower_to_not(self, small_db):
        compiled = compile_statement(
            "SELECT COUNT(*) FROM s WHERE c NOT IN (1, 2) AND label NOT LIKE '%9'",
            small_db.catalog,
        )
        assert compiled.query.relation("s").filter == And(
            (Not(InList("c", (1, 2))), Not(StringPredicate("label", "suffix", "9")))
        )

    def test_is_null_forms(self, small_db):
        compiled = compile_statement(
            "SELECT COUNT(*) FROM t WHERE a IS NULL OR b IS NOT NULL", small_db.catalog
        )
        assert compiled.query.relation("t").filter == Or((is_null("a"), is_not_null("b")))

    def test_post_join_predicate_or_of_ands(self, small_db):
        compiled = compile_statement(
            """
            SELECT COUNT(*) FROM t, s
            WHERE t.a = s.a
              AND ((t.b < 4 AND s.c < 3) OR (t.b > 10 AND s.c > 7))
            """,
            small_db.catalog,
        )
        assert compiled.query.post_join_predicates == (
            PostJoinPredicate(
                disjuncts=(
                    (
                        QualifiedComparison("t", "b", "<", 4),
                        QualifiedComparison("s", "c", "<", 3),
                    ),
                    (
                        QualifiedComparison("t", "b", ">", 10),
                        QualifiedComparison("s", "c", ">", 7),
                    ),
                )
            ),
        )

    def test_single_conjunct_post_join(self, small_db):
        compiled = compile_statement(
            "SELECT COUNT(*) FROM t, s WHERE t.a = s.a AND (t.b < 4 AND s.c < 3)",
            small_db.catalog,
        )
        assert compiled.query.post_join_predicates == (
            PostJoinPredicate(
                disjuncts=(
                    (
                        QualifiedComparison("t", "b", "<", 4),
                        QualifiedComparison("s", "c", "<", 3),
                    ),
                )
            ),
        )

    def test_non_equi_join_rejected(self, small_db):
        with pytest.raises(SqlError, match="only equality joins"):
            compile_statement(
                "SELECT COUNT(*) FROM t, s WHERE t.a < s.a", small_db.catalog
            )

    def test_same_alias_column_comparison_rejected(self, small_db):
        with pytest.raises(SqlError, match="two columns of 't'"):
            compile_statement("SELECT COUNT(*) FROM t WHERE t.a = t.b", small_db.catalog)

    def test_constant_predicate_rejected(self, small_db):
        with pytest.raises(SqlError, match="references no column"):
            compile_statement("SELECT COUNT(*) FROM t WHERE 1 = 1", small_db.catalog)

    def test_multi_relation_between_rejected(self, small_db):
        with pytest.raises(SqlError, match="simple comparisons"):
            compile_statement(
                "SELECT COUNT(*) FROM t, s WHERE t.a = s.a AND (t.b < 4 OR s.c BETWEEN 1 AND 2)",
                small_db.catalog,
            )


# ---------------------------------------------------------------------------
# Database.sql / EXPLAIN / Database.explain
# ---------------------------------------------------------------------------
class TestDatabaseSql:
    def test_sql_executes(self, small_db):
        result = small_db.sql(
            "SELECT COUNT(*) AS n FROM t, s WHERE t.a = s.a AND t.a < 3"
        )
        # s.a cycles 0..4 twice; a < 3 keeps a in {0,1,2}, two s rows each.
        assert result.aggregates == {"n": 6.0}

    def test_sql_modes_agree(self, small_db):
        text = "SELECT COUNT(*) AS n FROM t, s WHERE t.a = s.a AND s.c > 2"
        results = {
            mode: small_db.sql(text, mode=mode).aggregates for mode in ExecutionMode
        }
        assert len({tuple(sorted(r.items())) for r in results.values()}) == 1

    def test_explain_statement_does_not_execute(self, small_db):
        explained = small_db.sql("EXPLAIN SELECT COUNT(*) FROM t, s WHERE t.a = s.a")
        from repro.engine.database import ExplainResult

        assert isinstance(explained, ExplainResult)
        assert explained.physical_plan is not None
        assert all(op.seconds == 0.0 and op.rows_out == 0 for op in explained.op_stats)
        trace = explained.render()
        assert "== RPT ==" in trace and "scan" in trace
        assert "PhysicalPlan" in explained.describe()

    def test_explain_sql_matches_execute_compilation(self, small_db):
        text = "SELECT COUNT(*) FROM t, s WHERE t.a = s.a"
        explained = small_db.explain_sql(text, mode=ExecutionMode.PT)
        executed = small_db.sql(text, mode=ExecutionMode.PT)
        assert explained.physical_plan.op_kinds() == executed.physical_plan.op_kinds()

    def test_explain_programmatic_spec(self, small_db):
        spec = QuerySpec(
            name="prog",
            relations=(RelationRef("t", "t"), RelationRef("s", "s")),
            joins=(JoinCondition("t", "a", "s", "a"),),
        )
        explained = small_db.explain(spec, mode=ExecutionMode.YANNAKAKIS)
        assert explained.query is spec
        assert [op.kind for op in explained.op_stats] == list(
            explained.physical_plan.op_kinds()
        )
        assert "== Yannakakis ==" in explained.render()

    def test_explain_all_modes(self, small_db):
        spec = QuerySpec(
            name="prog_modes",
            relations=(RelationRef("t", "t"), RelationRef("s", "s")),
            joins=(JoinCondition("t", "a", "s", "a"),),
        )
        for mode in ExecutionMode:
            explained = small_db.explain(spec, mode=mode)
            assert len(explained.op_stats) == len(explained.physical_plan.ops)

    def test_sql_name_parameter(self, small_db):
        result = small_db.sql("SELECT COUNT(*) FROM t", name="renamed")
        assert result.query.name == "renamed"

    def test_run_sql_trace_executes_and_rejects_explain(self, small_db):
        from repro.bench import run_sql_trace
        from repro.errors import BenchmarkError

        text = "SELECT COUNT(*) AS n FROM t, s WHERE t.a = s.a"
        traces = run_sql_trace(small_db, text, modes=(ExecutionMode.RPT,))
        assert traces[ExecutionMode.RPT].aggregates["n"] == 10.0
        with pytest.raises(BenchmarkError, match="EXPLAIN"):
            run_sql_trace(small_db, "EXPLAIN " + text)


# ---------------------------------------------------------------------------
# split_statements (multi-statement .sql files)
# ---------------------------------------------------------------------------
class TestSplitStatements:
    def test_splits_on_semicolons(self):
        parts = split_statements(
            "-- name: one\nSELECT COUNT(*) FROM t;\n-- name: two\nSELECT COUNT(*) FROM s;"
        )
        assert len(parts) == 2
        assert "one" in parts[0] and "two" in parts[1]

    def test_ignores_semicolons_in_strings_and_comments(self):
        parts = split_statements(
            "SELECT COUNT(*) FROM t WHERE label = 'a;b'; -- trailing; comment\n"
        )
        assert len(parts) == 1

    def test_comment_only_tail_dropped(self):
        parts = split_statements("SELECT COUNT(*) FROM t;\n-- just a comment\n")
        assert len(parts) == 1


# ---------------------------------------------------------------------------
# IsNull expression semantics
# ---------------------------------------------------------------------------
class TestIsNull:
    def test_evaluate(self, small_db):
        table = small_db.table("t")
        assert not is_null("a").evaluate(table).any()
        assert is_not_null("a").evaluate(table).all()

    def test_sql_execution(self, small_db):
        none = small_db.sql("SELECT COUNT(*) AS n FROM t WHERE a IS NULL")
        every = small_db.sql("SELECT COUNT(*) AS n FROM t WHERE a IS NOT NULL")
        assert none.aggregates["n"] == 0.0
        assert every.aggregates["n"] == 10.0

    def test_unknown_column_still_raises(self, small_db):
        with pytest.raises(ReproError):
            IsNull("missing").evaluate(small_db.table("t"))


# ---------------------------------------------------------------------------
# PlanError diagnostics (satellite: alias/column always named)
# ---------------------------------------------------------------------------
class TestPlanErrorDiagnostics:
    def test_duplicate_alias_names_the_alias(self):
        from repro.errors import PlanError

        with pytest.raises(PlanError, match=r"duplicate relation aliases: \['x'\]"):
            QuerySpec(
                name="dup",
                relations=(RelationRef("x", "t"), RelationRef("x", "s")),
                joins=(),
            )

    def test_unknown_join_alias_names_condition_and_known(self):
        from repro.errors import PlanError

        with pytest.raises(PlanError, match=r"t\.a = ghost\.a.*unknown alias 'ghost'.*declared"):
            QuerySpec(
                name="ghostly",
                relations=(RelationRef("t", "t"),),
                joins=(JoinCondition("t", "a", "ghost", "a"),),
            )

    def test_empty_relation_ref_names_fields(self):
        from repro.errors import PlanError

        with pytest.raises(PlanError, match="alias='', table='t'"):
            RelationRef("", "t")

    def test_aggregate_error_names_inputs(self):
        from repro.errors import PlanError

        with pytest.raises(PlanError, match="aggregate 'sum' requires an input column"):
            AggregateSpec(function="sum")
