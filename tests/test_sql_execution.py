"""Checked-in ``.sql`` workloads execute bit-identical to the hand-built specs.

Three layers of coverage:

* **sync** — the checked-in files are exactly what the formatter renders
  from the hand-built QuerySpecs (no drift);
* **full sweep** — every file parses, binds, and executes under all five
  execution modes with aggregates bit-identical to the hand-built spec run
  under the same plan;
* **backend matrix** — a representative subset (one query per workload
  shape) additionally sweeps serial / chunked / parallel backends.
"""

from __future__ import annotations

import pytest

from repro import Database, ExecutionMode, ExecutionOptions
from repro.workloads import sqlfiles

SCALE = 0.1
SEED = 1

ALL_STEMS = sorted(sqlfiles.available())

#: One query per structural family for the backend matrix.
MATRIX_STEMS = ("synthetic_figure2", "tpch_q3", "tpch_q5", "tpch_q9", "job_2a", "job_6a")

BACKENDS = ("serial", "chunked", "parallel")


@pytest.fixture(scope="module")
def specs():
    return sqlfiles.handbuilt_specs()


@pytest.fixture(scope="module")
def databases(tpch_db, job_db):
    """File-stem-keyed access to the shared workload databases.

    TPC-H and JOB reuse the session fixtures (same scale/seed); each
    synthetic query owns its instance database.
    """
    cache = {"tpch": tpch_db, "job": job_db}

    def lookup(stem: str) -> Database:
        workload = sqlfiles.workload_of(stem)
        if workload == "synthetic":
            key = f"synthetic:{stem}"
            if key not in cache:
                cache[key] = sqlfiles.database_for(
                    "synthetic", synthetic_query=stem[len("synthetic_") :]
                )
            return cache[key]
        return cache[workload]

    return lookup


def test_checked_in_files_cover_every_workload_query(specs):
    assert set(ALL_STEMS) == set(specs), (
        "checked-in .sql files and hand-built specs diverge; "
        "run repro.workloads.sqlfiles.regenerate()"
    )
    # 3 synthetic + 20 TPC-H + 33 JOB.
    assert len(ALL_STEMS) == 56


def test_checked_in_files_match_formatter_output(specs):
    rendered = sqlfiles.rendered_files()
    for stem in ALL_STEMS:
        assert sqlfiles.sql_text(stem) == rendered[stem], (
            f"{stem}.sql drifted from its hand-built spec; "
            "run repro.workloads.sqlfiles.regenerate()"
        )


@pytest.mark.parametrize("stem", ALL_STEMS)
def test_sql_file_bit_identical_all_modes(stem, specs, databases):
    """The acceptance sweep: every file × every mode, same plan, same answer."""
    db = databases(stem)
    text = sqlfiles.sql_text(stem)
    spec = specs[stem]
    plan = db.optimizer_plan(spec)
    for mode in ExecutionMode:
        via_sql = db.sql(text, mode=mode, plan=plan)
        assert via_sql.query == spec
        handbuilt = db.execute(spec, mode=mode, plan=plan)
        assert via_sql.aggregates == handbuilt.aggregates, (stem, mode)
        assert via_sql.output_rows == handbuilt.output_rows, (stem, mode)


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("stem", MATRIX_STEMS)
def test_backend_matrix_bit_identical(stem, backend, specs, databases):
    """Subset × 5 modes × serial/chunked/parallel: SQL and hand-built agree."""
    db = databases(stem)
    text = sqlfiles.sql_text(stem)
    spec = specs[stem]
    plan = db.optimizer_plan(spec)
    options = ExecutionOptions(backend=backend)
    for mode in ExecutionMode:
        via_sql = db.sql(text, mode=mode, plan=plan, options=options)
        handbuilt = db.execute(spec, mode=mode, plan=plan, options=options)
        assert via_sql.aggregates == handbuilt.aggregates, (stem, mode, backend)


def test_run_all_harness_smoke():
    """The CI entry point: executes every file and self-verifies."""
    records = sqlfiles.run_all(scale=0.05, seed=3)
    assert len(records) == len(ALL_STEMS)
    assert all(r["matches_handbuilt"] for r in records)


def test_explain_sql_files_compile_without_executing(specs, databases):
    """EXPLAIN over checked-in files produces a plan trace for every mode."""
    stem = "tpch_q5"
    db = databases(stem)
    for mode in ExecutionMode:
        explained = db.explain_sql(sqlfiles.sql_text(stem), mode=mode)
        assert len(explained.op_stats) == len(explained.physical_plan.ops)
        assert explained.query == specs[stem]
