"""Round-trip property: ``parse(to_sql(spec)) == spec`` for every workload query.

The formatter and the parse/bind/lower pipeline are exact inverses over the
whole registered query surface — all four benchmarks (TPC-H, JOB, TPC-DS,
DSB — including the post-join-predicate queries) plus the synthetic
adversarial instances.  Equality is *structural* QuerySpec equality: same
relations/aliases/filters (same expression tree shapes), same join order,
same aggregates, same post-join predicates.
"""

from __future__ import annotations

import pytest

from repro.sql import compile_statement, to_sql
from repro.workloads import dsb, job, synthetic, tpcds, tpch


def _workload_cases():
    for module, fixture in (
        (tpch, "tpch_db"),
        (job, "job_db"),
        (tpcds, "tpcds_db"),
        (dsb, "dsb_db"),
    ):
        for key, spec in module.all_queries().items():
            yield pytest.param(fixture, spec, id=f"{module.__name__.split('.')[-1]}_{key}")


@pytest.mark.parametrize("fixture,spec", list(_workload_cases()))
def test_roundtrip_benchmark_query(fixture, spec, request):
    db = request.getfixturevalue(fixture)
    sql = to_sql(spec)
    back = compile_statement(sql, db.catalog).query
    assert back == spec, f"round-trip changed the spec:\n{sql}"


@pytest.mark.parametrize(
    "maker",
    [
        synthetic.figure2_instance,
        synthetic.figure12_instance,
        synthetic.unsafe_subjoin_instance,
    ],
    ids=["figure2", "figure12", "unsafe_subjoin"],
)
def test_roundtrip_synthetic_query(maker):
    instance = maker()
    sql = to_sql(instance.query)
    back = compile_statement(sql, instance.database.catalog).query
    assert back == instance.query


def test_roundtrip_is_idempotent(tpch_db):
    """A second format → parse cycle reproduces identical SQL text."""
    spec = tpch.query(9)
    once = to_sql(spec)
    twice = to_sql(compile_statement(once, tpch_db.catalog).query)
    assert once == twice


def test_roundtrip_preserves_query_name(tpch_db):
    spec = tpch.query(5)
    assert compile_statement(to_sql(spec), tpch_db.catalog).query.name == "tpch_q5"


def test_formatter_rejects_unrepresentable_like():
    from repro.errors import PlanError
    from repro.expr import contains
    from repro.sql.format import format_expression

    with pytest.raises(PlanError, match="wildcards"):
        format_expression(contains("c", "50%"), "x")


def test_numpy_scalar_literals_roundtrip():
    """np.float64/int64 filter values must render as plain SQL numbers."""
    import numpy as np

    from repro.expr import Comparison
    from repro.sql.format import format_expression, format_value

    assert format_value(np.float64(2.5)) == "2.5"
    assert format_value(np.int64(7)) == "7"
    assert format_expression(Comparison("a", "<", np.float64(2.5)), "t") == "t.a < 2.5"


def test_keyword_named_column_roundtrips(tpch_db):
    """Dot-qualified keyword-named columns survive format -> parse."""
    from repro.expr import lt as lt_
    from repro.query import JoinCondition, QuerySpec, RelationRef

    db = __import__("repro").Database()
    import numpy as np

    db.register_dataframe("t1", {"id": np.arange(5), "min": np.arange(5)})
    db.register_dataframe("t2", {"id": np.arange(5)})
    spec = QuerySpec(
        name="kw_col",
        relations=(RelationRef("a", "t1", lt_("min", 3)), RelationRef("b", "t2")),
        joins=(JoinCondition("a", "id", "b", "id"),),
    )
    back = compile_statement(to_sql(spec), db.catalog).query
    assert back == spec


def test_bare_count_star_roundtrips_without_output_name(tpch_db):
    """COUNT(*) with output_name=None must not gain a name on re-parse."""
    from repro.query import AggregateSpec, JoinCondition, QuerySpec, RelationRef

    spec = QuerySpec(
        name="bare_count",
        relations=(RelationRef("o", "orders"), RelationRef("l", "lineitem")),
        joins=(JoinCondition("l", "l_orderkey", "o", "o_orderkey"),),
        aggregates=(AggregateSpec(function="count", output_name=None),),
    )
    rendered = to_sql(spec)
    assert " AS " not in rendered.splitlines()[1]
    back = compile_statement(rendered, tpch_db.catalog).query
    assert back == spec
    # And the two paths produce the same aggregate keys at execution time.
    assert (
        tpch_db.execute(spec).aggregates.keys()
        == tpch_db.sql(rendered).aggregates.keys()
    )


def test_formatter_rejects_unrenderable_query_name():
    from repro.errors import PlanError
    from repro.query import QuerySpec, RelationRef

    spec = QuerySpec(name="my query", relations=(RelationRef("a", "t1"),), joins=())
    with pytest.raises(PlanError, match="'-- name:' directive"):
        to_sql(spec)
    # Without the directive the same spec renders fine (name simply not kept).
    assert to_sql(spec, include_name=False).startswith("SELECT")


def test_formatter_rejects_keyword_alias_and_bad_identifiers():
    """Aliases/tables the parser could never re-read raise PlanError upfront."""
    from repro.errors import PlanError
    from repro.query import JoinCondition, QuerySpec, RelationRef

    keyword_alias = QuerySpec(
        name="kw_alias",
        relations=(RelationRef("select", "t1"), RelationRef("b", "t2")),
        joins=(JoinCondition("select", "id", "b", "id"),),
    )
    with pytest.raises(PlanError, match="collides with a SQL keyword"):
        to_sql(keyword_alias)

    spaced_table = QuerySpec(
        name="bad_table", relations=(RelationRef("a", "has space"),), joins=()
    )
    with pytest.raises(PlanError, match="SQL identifier"):
        to_sql(spaced_table)
