"""Unit tests for the storage layer: datatypes, columns, tables, catalog, buffer."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CatalogError, SchemaError
from repro.storage import BufferManager, Catalog, Column, DataType, Table
from repro.storage.column import concat_columns
from repro.storage.datatypes import coerce_to_numpy, infer_datatype
from repro.storage.table import ForeignKey


class TestDataTypes:
    def test_infer_int(self):
        assert infer_datatype([1, 2, 3]) is DataType.INT64

    def test_infer_float(self):
        assert infer_datatype([1.5, 2.5]) is DataType.FLOAT64

    def test_infer_string(self):
        assert infer_datatype(["a", "b"]) is DataType.STRING

    def test_infer_bool(self):
        assert infer_datatype([True, False]) is DataType.BOOL

    def test_infer_empty_raises(self):
        with pytest.raises(SchemaError):
            infer_datatype([])

    def test_coerce_string_rejected(self):
        with pytest.raises(SchemaError):
            coerce_to_numpy(["a"], DataType.STRING)

    def test_integer_backed(self):
        assert DataType.INT64.is_integer_backed
        assert DataType.STRING.is_integer_backed
        assert DataType.DATE.is_integer_backed
        assert not DataType.FLOAT64.is_integer_backed


class TestColumn:
    def test_from_values_int(self):
        col = Column.from_values("x", [3, 1, 2])
        assert col.dtype is DataType.INT64
        assert col.to_list() == [3, 1, 2]
        assert len(col) == 3

    def test_string_dictionary_encoding(self):
        col = Column.from_values("s", ["b", "a", "b", "c"])
        assert col.dtype is DataType.STRING
        assert col.dictionary == ("a", "b", "c")
        assert col.to_list() == ["b", "a", "b", "c"]
        assert col.data.dtype == np.int64

    def test_encode_literal_present_and_absent(self):
        col = Column.from_values("s", ["x", "y"])
        assert col.encode_literal("y") == col.dictionary.index("y")
        assert col.encode_literal("missing") == -1

    def test_take_and_filter(self):
        col = Column.from_values("x", [10, 20, 30, 40])
        assert col.take(np.array([2, 0])).to_list() == [30, 10]
        assert col.filter(np.array([True, False, True, False])).to_list() == [10, 30]

    def test_min_max_and_distinct(self):
        col = Column.from_values("x", [5, 2, 5, 9])
        assert col.min_max() == (2, 9)
        assert col.distinct_count() == 3

    def test_min_max_empty_raises(self):
        col = Column.from_values("x", [1]).filter(np.array([False]))
        with pytest.raises(SchemaError):
            col.min_max()

    def test_concat_string_columns_merges_dictionaries(self):
        a = Column.from_values("s", ["a", "c"])
        b = Column.from_values("s", ["b", "c"])
        merged = a.concat(b)
        assert merged.to_list() == ["a", "c", "b", "c"]
        assert merged.dictionary == ("a", "b", "c")

    def test_concat_type_mismatch_raises(self):
        a = Column.from_values("x", [1, 2])
        b = Column.from_values("x", [1.0])
        with pytest.raises(SchemaError):
            a.concat(b)

    def test_concat_columns_helper(self):
        cols = [Column.from_values("x", [1]), Column.from_values("x", [2, 3])]
        assert concat_columns(cols).to_list() == [1, 2, 3]

    def test_rename(self):
        col = Column.from_values("x", [1]).rename("y")
        assert col.name == "y"

    def test_string_requires_dictionary(self):
        with pytest.raises(SchemaError):
            Column(name="s", dtype=DataType.STRING, data=np.array([0]), dictionary=None)

    @given(st.lists(st.integers(min_value=-(2**40), max_value=2**40), min_size=1, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_integers_property(self, values):
        col = Column.from_values("x", values)
        assert col.to_list() == values

    @given(st.lists(st.text(min_size=0, max_size=8), min_size=1, max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_strings_property(self, values):
        col = Column.from_values("s", values)
        assert col.to_list() == values


class TestTable:
    def _table(self) -> Table:
        return Table.from_dict(
            "t",
            {"id": [1, 2, 3], "name": ["a", "b", "c"], "score": [0.5, 0.25, 1.0]},
            primary_key=["id"],
        )

    def test_basic_properties(self):
        t = self._table()
        assert t.num_rows == 3
        assert t.num_columns == 3
        assert t.column_names == ("id", "name", "score")
        assert t.is_primary_key("id")
        assert not t.is_primary_key("name")

    def test_column_lookup_and_missing(self):
        t = self._table()
        assert t.column("name").to_list() == ["a", "b", "c"]
        assert t.has_column("score")
        with pytest.raises(SchemaError):
            t.column("nope")

    def test_take_filter_select_head(self):
        t = self._table()
        assert t.take(np.array([2, 0])).column("id").to_list() == [3, 1]
        assert t.filter(np.array([False, True, True])).num_rows == 2
        assert t.select(["name"]).column_names == ("name",)
        assert t.head(2).num_rows == 2

    def test_mismatched_lengths_raise(self):
        with pytest.raises(SchemaError):
            Table.from_dict("bad", {"a": [1, 2], "b": [1]})

    def test_duplicate_columns_raise(self):
        cols = (Column.from_values("a", [1]), Column.from_values("a", [2]))
        with pytest.raises(SchemaError):
            Table(name="bad", columns=cols)

    def test_foreign_key_metadata(self):
        t = Table.from_dict(
            "child",
            {"pid": [1, 2]},
            foreign_keys=[ForeignKey("pid", "parent", "id")],
        )
        assert t.is_foreign_key("pid")
        assert not t.is_foreign_key("other")

    def test_unknown_primary_key_raises(self):
        with pytest.raises(SchemaError):
            Table.from_dict("bad", {"a": [1]}, primary_key=["nope"])

    def test_memory_bytes_positive(self):
        assert self._table().memory_bytes() > 0

    def test_to_dict(self):
        assert self._table().to_dict()["name"] == ["a", "b", "c"]


class TestCatalog:
    def test_register_and_lookup(self):
        catalog = Catalog()
        catalog.register(Table.from_dict("t", {"a": [1, 2, 2]}))
        assert catalog.has_table("t")
        assert "t" in catalog
        assert catalog.table("t").num_rows == 3
        assert catalog.statistics("t").num_rows == 3
        assert catalog.statistics("t").distinct("a") == 2

    def test_duplicate_registration_raises(self):
        catalog = Catalog()
        catalog.register(Table.from_dict("t", {"a": [1]}))
        with pytest.raises(CatalogError):
            catalog.register(Table.from_dict("t", {"a": [2]}))
        catalog.register(Table.from_dict("t", {"a": [2, 3]}), replace=True)
        assert catalog.table("t").num_rows == 2

    def test_missing_table_raises(self):
        with pytest.raises(CatalogError):
            Catalog().table("missing")

    def test_unregister(self):
        catalog = Catalog()
        catalog.register(Table.from_dict("t", {"a": [1]}))
        catalog.unregister("t")
        assert not catalog.has_table("t")
        with pytest.raises(CatalogError):
            catalog.unregister("t")

    def test_largest_table_and_total_rows(self):
        catalog = Catalog()
        assert catalog.largest_table() is None
        catalog.register(Table.from_dict("small", {"a": [1]}))
        catalog.register(Table.from_dict("big", {"a": list(range(10))}))
        assert catalog.largest_table() == "big"
        assert catalog.total_rows() == 11
        assert len(catalog) == 2


class TestBufferManager:
    def test_unlimited_memory_never_spills(self):
        buffer = BufferManager(memory_budget_bytes=None)
        buffer.write("a", 1000)
        buffer.write("b", 1000)
        buffer.read("a", 1000)
        assert buffer.stats.evictions == 0
        assert buffer.stats.bytes_written_to_disk == 0
        assert buffer.stats.bytes_served_from_memory == 1000

    def test_eviction_and_reread(self):
        buffer = BufferManager(memory_budget_bytes=1500)
        buffer.write("a", 1000)
        buffer.write("b", 1000)  # evicts a (dirty -> spilled)
        assert buffer.stats.evictions == 1
        assert buffer.stats.bytes_written_to_disk == 1000
        buffer.read("a", 1000)  # must come back from disk
        assert buffer.stats.bytes_read_from_disk == 1000

    def test_registered_disk_read_charged_once_then_cached(self):
        buffer = BufferManager(memory_budget_bytes=None)
        buffer.register_on_disk("base", 5000)
        buffer.read("base", 5000)
        buffer.read("base", 5000)
        assert buffer.stats.bytes_read_from_disk == 5000
        assert buffer.stats.bytes_served_from_memory == 5000

    def test_simulated_seconds_monotone_in_bytes(self):
        a = BufferManager()
        a.read("x", 10_000_000)
        b = BufferManager()
        b.read("x", 20_000_000)
        assert b.stats.simulated_seconds() > a.stats.simulated_seconds()

    def test_release(self):
        buffer = BufferManager(memory_budget_bytes=100)
        buffer.write("a", 80)
        buffer.release("a")
        assert buffer.resident_bytes == 0


class TestEncodedColumnStorage:
    """Encoded buffers through the storage layer: round-trips and the arena."""

    @given(
        st.lists(st.integers(min_value=-100, max_value=100), min_size=1, max_size=500),
        st.sampled_from([None, 3, 64]),
    )
    @settings(max_examples=60, deadline=None)
    def test_choose_encoding_roundtrip_property(self, values, stride):
        from repro.storage.encodings import choose_encoding

        col = Column.from_values("x", values)
        encoded = choose_encoding(col, block_rows=32)
        if encoded is None:
            return  # raw is always a valid choice
        np.testing.assert_array_equal(encoded.decode(), col.data)
        if stride is not None:
            selection = np.arange(0, len(values), stride, dtype=np.int64)
            np.testing.assert_array_equal(encoded.decode(selection), col.data[selection])

    def test_arena_ships_encoded_buffers_and_gathers_losslessly(self):
        from repro.storage import shm
        from repro.storage.shm import SharedColumnArena, gather_encoded

        rng = np.random.default_rng(17)
        catalog = Catalog()
        catalog.register(
            Table.from_dict(
                "t",
                {
                    "packed": rng.integers(0, 1 << 20, size=5000).tolist(),
                    "wide": rng.integers(-(2**60), 2**60, size=5000).tolist(),
                },
            )
        )
        table = catalog.table("t")
        arena = SharedColumnArena(catalog)
        try:
            ref = arena.column_ref(table, "packed", encoded=True)
            assert hasattr(ref, "codes"), "narrow-domain column must ship encoded"
            assert ref.nbytes < table.column("packed").data.nbytes
            selection = rng.integers(0, 5000, size=700)
            np.testing.assert_array_equal(
                gather_encoded(ref, selection), table.column("packed").data[selection]
            )
            # Raw and encoded refs are distinct arena entries.
            raw_ref = arena.column_ref(table, "packed", encoded=False)
            assert not hasattr(raw_ref, "codes")
            keys = arena.published_keys()
            assert ("t", 1, "packed", True) in keys and ("t", 1, "packed", False) in keys
            # Unencodable columns fall back to the raw segment even when
            # encoded shipping is requested.
            wide_ref = arena.column_ref(table, "wide", encoded=True)
            assert not hasattr(wide_ref, "codes")
        finally:
            arena.close()
            shm.detach_all()
        assert arena.num_segments == 0

    def test_arena_never_ships_rle_encoded(self):
        from repro.storage.encodings import choose_encoding
        from repro.storage.shm import SharedColumnArena

        catalog = Catalog()
        catalog.register(
            Table.from_dict("t", {"runs": np.repeat(np.arange(6), 900).tolist()})
        )
        table = catalog.table("t")
        assert choose_encoding(table.column("runs")).encoding == "rle"
        arena = SharedColumnArena(catalog)
        try:
            ref = arena.column_ref(table, "runs", encoded=True)
            # RLE point-gathers would searchsorted per morsel row: ship raw.
            assert ref is not None and not hasattr(ref, "codes")
        finally:
            arena.close()
