"""Tests for the TPC-H / JOB / TPC-DS / DSB workload generators and query sets."""

from __future__ import annotations

import pytest

from repro import Database, ExecutionMode
from repro.core import is_alpha_acyclic
from repro.errors import WorkloadError
from repro.workloads import dsb, job, tpcds, tpch
from repro.workloads.generator import WorkloadScale, foreign_keys, zipf_weights


class TestGeneratorUtilities:
    def test_workload_scale_rows(self):
        ws = WorkloadScale(scale=0.5)
        assert ws.rows(1000) == 500
        assert ws.rows(1, minimum=3) == 3

    def test_rng_deterministic(self):
        ws = WorkloadScale(seed=7)
        a = ws.rng("x").integers(0, 100, 10)
        b = ws.rng("x").integers(0, 100, 10)
        assert (a == b).all()
        c = ws.rng("y").integers(0, 100, 10)
        assert not (a == c).all()

    def test_foreign_keys_range(self):
        ws = WorkloadScale(seed=1)
        keys = foreign_keys(ws.rng("fk"), 1000, 50)
        assert keys.min() >= 1 and keys.max() <= 50

    def test_foreign_keys_skew_concentrates(self):
        import numpy as np

        ws = WorkloadScale(seed=1)
        uniform = foreign_keys(ws.rng("a"), 5000, 100, skew=0.0)
        skewed = foreign_keys(ws.rng("b"), 5000, 100, skew=1.2)
        top_uniform = (uniform == np.bincount(uniform).argmax()).mean()
        top_skewed = (skewed == np.bincount(skewed).argmax()).mean()
        assert top_skewed > top_uniform

    def test_foreign_keys_null_fraction(self):
        ws = WorkloadScale(seed=1)
        keys = foreign_keys(ws.rng("n"), 2000, 10, null_fraction=0.5)
        dangling = (keys == -1).mean()
        assert 0.3 < dangling < 0.7

    def test_foreign_keys_invalid_ref_size(self):
        ws = WorkloadScale(seed=1)
        with pytest.raises(WorkloadError):
            foreign_keys(ws.rng("x"), 10, 0)

    def test_zipf_weights_normalized(self):
        weights = zipf_weights(100, 1.0)
        assert weights.sum() == pytest.approx(1.0)
        assert weights[0] > weights[-1]
        uniform = zipf_weights(10, 0.0)
        assert uniform[0] == pytest.approx(uniform[-1])


class TestTpch:
    def test_load_counts_and_fk_integrity(self, tpch_db):
        lineitem = tpch_db.table("lineitem")
        orders = tpch_db.table("orders")
        assert lineitem.num_rows > orders.num_rows > 0
        order_keys = set(orders.column("o_orderkey").to_list())
        assert set(lineitem.column("l_orderkey").to_list()) <= order_keys

    def test_query_set_complete(self):
        queries = tpch.all_queries()
        assert len(queries) == 20
        assert set(tpch.FIGURE6_QUERIES) <= set(tpch.query_numbers())

    def test_q1_q6_excluded(self):
        with pytest.raises(WorkloadError):
            tpch.query(1)
        with pytest.raises(WorkloadError):
            tpch.query(6)

    def test_q5_is_cyclic_others_in_figure6_acyclic(self, tpch_db):
        for number in tpch.FIGURE6_QUERIES:
            graph = tpch_db.join_graph(tpch.query(number), use_filtered_sizes=False)
            if number in tpch.CYCLIC_QUERIES:
                assert not is_alpha_acyclic(graph), f"Q{number} should be cyclic"
            else:
                assert is_alpha_acyclic(graph), f"Q{number} should be acyclic"

    def test_queries_execute_consistently(self, tpch_db):
        for number in (3, 5, 10, 11):
            query = tpch.query(number)
            base = tpch_db.execute(query, mode=ExecutionMode.BASELINE)
            rpt = tpch_db.execute(query, mode=ExecutionMode.RPT)
            assert base.aggregates == rpt.aggregates


class TestJob:
    def test_load_and_fk_integrity(self, job_db):
        mk = job_db.table("movie_keyword")
        titles = set(job_db.table("title").column("id").to_list())
        assert set(mk.column("movie_id").to_list()) <= titles

    def test_all_33_templates_exist_and_are_acyclic(self, job_db):
        queries = job.all_queries()
        assert len(queries) == 33
        for name, query in queries.items():
            graph = job_db.join_graph(query, use_filtered_sizes=False)
            assert query.is_connected(), name
            assert is_alpha_acyclic(graph), f"{name} should be acyclic"

    def test_invalid_template_rejected(self):
        with pytest.raises(WorkloadError):
            job.query(34)

    def test_template_sizes_grow(self):
        assert job.query(29).num_joins > job.query(3).num_joins

    def test_queries_execute_consistently(self, job_db):
        for number in (2, 3, 17, 32):
            query = job.query(number)
            base = job_db.execute(query, mode=ExecutionMode.BASELINE)
            rpt = job_db.execute(query, mode=ExecutionMode.RPT)
            assert base.aggregates == rpt.aggregates


class TestTpcds:
    @pytest.fixture(scope="class")
    def tpcds_db(self):
        db = Database()
        tpcds.load(db, scale=0.1, seed=2)
        return db

    def test_query_subset_contains_discussed_queries(self):
        numbers = set(tpcds.query_numbers())
        assert set(tpcds.CYCLIC_QUERIES) <= numbers
        assert set(tpcds.SPECIAL_CASE_QUERIES) <= numbers
        assert set(tpcds.FIGURE8_QUERIES) <= numbers
        assert len(numbers) >= 30

    def test_cyclic_classification(self, tpcds_db):
        for number in tpcds.query_numbers():
            graph = tpcds_db.join_graph(tpcds.query(number), use_filtered_sizes=False)
            if number in tpcds.CYCLIC_QUERIES:
                assert not is_alpha_acyclic(graph), f"Q{number} should be cyclic"
            else:
                assert is_alpha_acyclic(graph), f"Q{number} should be acyclic"

    def test_q29_acyclic_with_composite_key_join(self, tpcds_db):
        """The paper singles out Q29 as acyclic but not γ-acyclic.

        The reproduction preserves the acyclic + composite-key-join structure
        (ss ⋈ sr on item_sk and ticket_number), so the *practical* γ-acyclicity
        check the paper proposes — "no two relations joined on more than one
        attribute" — fails and the engine must fall back to SafeSubjoin
        supervision for this query.
        """
        from repro.core import has_composite_edges

        graph = tpcds_db.join_graph(tpcds.query(29), use_filtered_sizes=False)
        assert tpcds_db.is_acyclic(tpcds.query(29))
        assert has_composite_edges(graph)

    def test_post_join_predicates_present_for_q13_q48(self):
        assert tpcds.query(13).post_join_predicates
        assert tpcds.query(48).post_join_predicates

    def test_unknown_query_rejected(self):
        with pytest.raises(WorkloadError):
            tpcds.query(1)

    def test_queries_execute_consistently(self, tpcds_db):
        for number in (3, 13, 19, 54, 83):
            query = tpcds.query(number)
            base = tpcds_db.execute(query, mode=ExecutionMode.BASELINE)
            rpt = tpcds_db.execute(query, mode=ExecutionMode.RPT)
            assert base.aggregates == rpt.aggregates, number


class TestDsb:
    def test_dsb_reuses_tpcds_structures_with_skew(self):
        db = Database()
        dsb.load(db, scale=0.1)
        query = dsb.query(3)
        assert query.name.startswith("dsb_")
        assert query.num_joins == tpcds.query(3).num_joins
        result_base = db.execute(query, mode=ExecutionMode.BASELINE)
        result_rpt = db.execute(query, mode=ExecutionMode.RPT)
        assert result_base.aggregates == result_rpt.aggregates

    def test_dsb_data_is_skewed(self):
        import numpy as np

        plain_db, skew_db = Database(), Database()
        tpcds.load(plain_db, scale=0.1, seed=9, skew=0.0)
        tpcds.load(skew_db, scale=0.1, seed=9, skew=1.0)
        plain = plain_db.table("store_sales").column("ss_item_sk").data
        skewed = skew_db.table("store_sales").column("ss_item_sk").data
        top_plain = np.bincount(plain).max() / plain.shape[0]
        top_skew = np.bincount(skewed).max() / skewed.shape[0]
        assert top_skew > top_plain

    def test_query_numbers_match(self):
        assert dsb.query_numbers() == tpcds.query_numbers()
